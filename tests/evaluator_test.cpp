// Tests for the unified Evaluator interface and the PatternBatch
// bit-packed container: layout invariants, scalar/batch entry points,
// and the uniform input-width validation at the Evaluator boundary.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <type_traits>

#include "core/classical_pla.h"
#include "core/fabric.h"
#include "core/gnor_pla.h"
#include "core/wpla.h"
#include "logic/pattern_batch.h"
#include "logic/truth_table.h"
#include "util/cpu_features.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ambit {
namespace {

using core::ClassicalPla;
using core::Fabric;
using core::FabricStage;
using core::GnorPla;
using core::Wpla;
using logic::Cover;
using logic::PatternBatch;
using logic::TruthTable;

TEST(PatternBatchTest, SetGetRoundTrip) {
  PatternBatch batch(3, 130);  // spans three words per lane
  EXPECT_EQ(batch.num_signals(), 3);
  EXPECT_EQ(batch.num_patterns(), 130u);
  EXPECT_EQ(batch.words_per_lane(), 3u);
  batch.set(0, 0, true);
  batch.set(64, 1, true);
  batch.set(129, 2, true);
  EXPECT_TRUE(batch.get(0, 0));
  EXPECT_FALSE(batch.get(0, 1));
  EXPECT_TRUE(batch.get(64, 1));
  EXPECT_TRUE(batch.get(129, 2));
  batch.set(64, 1, false);
  EXPECT_FALSE(batch.get(64, 1));
}

TEST(PatternBatchTest, ExhaustiveMatchesMintermBits) {
  for (const int n : {1, 3, 6, 7, 9}) {
    const PatternBatch batch = PatternBatch::exhaustive(n);
    ASSERT_EQ(batch.num_patterns(), std::uint64_t{1} << n);
    for (std::uint64_t m = 0; m < batch.num_patterns(); ++m) {
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(batch.get(m, i), ((m >> i) & 1) != 0)
            << "n=" << n << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(PatternBatchTest, SubWordExhaustiveKeepsTailZero) {
  const PatternBatch batch = PatternBatch::exhaustive(3);
  EXPECT_EQ(batch.tail_mask(), 0xFFu);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(batch.lane(i)[0] & ~batch.tail_mask(), 0u);
  }
}

TEST(PatternBatchTest, ComplementLanePreservesTailPadding) {
  PatternBatch batch(1, 70);  // 6 valid bits in the second word
  batch.set(69, 0, true);
  batch.complement_lane(0);
  EXPECT_FALSE(batch.get(69, 0));
  EXPECT_TRUE(batch.get(0, 0));
  // Bits past num_patterns stay zero so NOR/complement kernels cannot
  // leak garbage between batches.
  EXPECT_EQ(batch.lane(0)[1] & ~batch.tail_mask(), 0u);
}

TEST(PatternBatchTest, FromPatternsTransposes) {
  const PatternBatch batch = PatternBatch::from_patterns(
      {{true, false}, {false, true}, {true, true}});
  EXPECT_EQ(batch.num_signals(), 2);
  EXPECT_EQ(batch.num_patterns(), 3u);
  EXPECT_EQ(batch.pattern(0), (std::vector<bool>{true, false}));
  EXPECT_EQ(batch.pattern(1), (std::vector<bool>{false, true}));
  EXPECT_EQ(batch.pattern(2), (std::vector<bool>{true, true}));
}

TEST(PatternBatchTest, SliceAndPasteRoundTrip) {
  // 150 patterns = two full words + a 22-bit tail.
  PatternBatch batch(2, 150);
  Rng rng(3);
  for (std::uint64_t p = 0; p < 150; ++p) {
    for (int s = 0; s < 2; ++s) {
      batch.set(p, s, rng.next_bool());
    }
  }
  PatternBatch rebuilt(2, 150);
  rebuilt.paste(batch.slice(0, 64), 0);
  rebuilt.paste(batch.slice(64, 86), 64);  // 86 = 64 + 22-bit tail
  EXPECT_EQ(rebuilt, batch);

  const PatternBatch tail = batch.slice(128, 22);
  EXPECT_EQ(tail.num_patterns(), 22u);
  for (std::uint64_t p = 0; p < 22; ++p) {
    EXPECT_EQ(tail.get(p, 0), batch.get(128 + p, 0));
  }
  EXPECT_EQ(tail.lane(0)[0] & ~tail.tail_mask(), 0u);
}

TEST(PatternBatchTest, CopyPatternsFromMatchesBitwiseReference) {
  // The bit-granular lane copy behind the serve coalescer, checked
  // against a get/set reference over random ranges at EVERY alignment:
  // offsets straddling word boundaries on either side, sub-word and
  // multi-word counts, and full-batch copies.
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const int signals = 1 + static_cast<int>(rng.next_u64() % 4);
    const std::uint64_t src_np = 1 + rng.next_u64() % 200;
    const std::uint64_t dst_np = 1 + rng.next_u64() % 200;
    PatternBatch src(signals, src_np);
    PatternBatch dst(signals, dst_np);
    for (int s = 0; s < signals; ++s) {
      for (std::uint64_t p = 0; p < src_np; ++p) {
        src.set(p, s, rng.next_bool());
      }
      for (std::uint64_t p = 0; p < dst_np; ++p) {
        dst.set(p, s, rng.next_bool());
      }
    }
    const std::uint64_t count =
        rng.next_u64() % (std::min(src_np, dst_np) + 1);
    const std::uint64_t src_first =
        count == src_np ? 0 : rng.next_u64() % (src_np - count + 1);
    const std::uint64_t dst_first =
        count == dst_np ? 0 : rng.next_u64() % (dst_np - count + 1);
    const PatternBatch before = dst;
    dst.copy_patterns_from(src, src_first, dst_first, count);
    for (int s = 0; s < signals; ++s) {
      for (std::uint64_t p = 0; p < dst_np; ++p) {
        const bool inside = p >= dst_first && p < dst_first + count;
        const bool expected = inside ? src.get(src_first + (p - dst_first), s)
                                     : before.get(p, s);
        ASSERT_EQ(dst.get(p, s), expected)
            << "trial=" << trial << " s=" << s << " p=" << p
            << " src_first=" << src_first << " dst_first=" << dst_first
            << " count=" << count;
      }
      // Tail padding must survive any in-range copy.
      ASSERT_EQ(dst.lane(s)[dst.words_per_lane() - 1] & ~dst.tail_mask(), 0u);
    }
  }
}

TEST(PatternBatchTest, PatternCountNearWordLayoutLimitIsRejected) {
  // The lane layout computes (num_patterns + 63) / 64; a count within
  // 63 of 2^64 would wrap that sum and yield a tiny words_per_lane that
  // every downstream bounds check would accept against the wrong
  // geometry. The constructor must reject it instead (the EVALB serve
  // path re-checks the same limit against its frame budget before the
  // batch is ever built).
  EXPECT_THROW(PatternBatch(1, ~std::uint64_t{0}), Error);
  EXPECT_THROW(PatternBatch(1, ~std::uint64_t{0} - 62), Error);
  EXPECT_NO_THROW(PatternBatch(0, ~std::uint64_t{0} - 63));
}

TEST(EvaluatorTest, CellCountersAre64BitOnTheBatchPath) {
  // active_cells() is a product of two int dimensions and sizes the
  // sweep-term reservation in GnorPlane::evaluate_batch — it must be
  // 64-bit like cell_count(), not int (full-scale planes overflow int).
  static_assert(
      std::is_same_v<decltype(std::declval<const GnorPla&>().active_cells()),
                     long long>);
  static_assert(
      std::is_same_v<
          decltype(std::declval<const ClassicalPla&>().active_cells()),
          long long>);
  const Cover f = Cover::parse(2, 1, {"11 1"});
  EXPECT_EQ(GnorPla::map_cover(f).active_cells(), 3);
}

TEST(PatternBatchTest, TailMaskAllOnesOnExactWordMultiples) {
  // On an exact multiple of 64 patterns the final word is FULLY valid:
  // tail_mask must be all ones, and the masked kernels (complement,
  // load_words) must treat the last word like any other. A mask rebuilt
  // naively from num_patterns % 64 would be zero here and erase 64
  // patterns per lane.
  for (const std::uint64_t np : {64ull, 128ull, 192ull}) {
    PatternBatch batch(2, np);
    EXPECT_EQ(batch.tail_mask(), ~std::uint64_t{0}) << np << " patterns";
    EXPECT_EQ(batch.words_per_lane(), np / 64);
    batch.complement_lane(0);
    for (std::uint64_t w = 0; w < batch.words_per_lane(); ++w) {
      EXPECT_EQ(batch.lane(0)[w], ~std::uint64_t{0})
          << np << " patterns, word " << w;
    }
    std::vector<std::uint64_t> words(batch.total_words(), ~std::uint64_t{0});
    batch.load_words(words.data(), words.size());
    EXPECT_EQ(batch.lane(1)[batch.words_per_lane() - 1], ~std::uint64_t{0});
  }
}

TEST(PatternBatchTest, CopyPatternsFromWordAlignedBoundaries) {
  // Directed probes of the word-aligned fast path at the counts the
  // random trial rarely lands on: one bit short of a word, an exact
  // word, a word and a bit, and multi-word runs ending flush with the
  // destination. Checked against the get/set reference.
  Rng rng(31);
  PatternBatch src(2, 256);
  PatternBatch dst(2, 256);
  for (int s = 0; s < 2; ++s) {
    for (std::uint64_t p = 0; p < 256; ++p) {
      src.set(p, s, rng.next_bool());
      dst.set(p, s, rng.next_bool());
    }
  }
  for (const std::uint64_t src_first : {0ull, 64ull}) {
    for (const std::uint64_t dst_first : {0ull, 128ull}) {
      for (const std::uint64_t count :
           {0ull, 1ull, 63ull, 64ull, 65ull, 127ull, 128ull}) {
        PatternBatch copy = dst;
        const PatternBatch before = copy;
        copy.copy_patterns_from(src, src_first, dst_first, count);
        for (int s = 0; s < 2; ++s) {
          for (std::uint64_t p = 0; p < 256; ++p) {
            const bool inside = p >= dst_first && p < dst_first + count;
            const bool expected =
                inside ? src.get(src_first + (p - dst_first), s)
                       : before.get(p, s);
            ASSERT_EQ(copy.get(p, s), expected)
                << "s=" << s << " p=" << p << " src_first=" << src_first
                << " dst_first=" << dst_first << " count=" << count;
          }
        }
      }
    }
  }
}

TEST(PatternBatchTest, SliceAndPasteAtExactWordMultiples) {
  // A 128-pattern batch sliced into two 64-pattern halves: every piece
  // has an all-ones tail mask and reassembles bit-exactly.
  PatternBatch batch(2, 128);
  Rng rng(37);
  for (std::uint64_t p = 0; p < 128; ++p) {
    for (int s = 0; s < 2; ++s) {
      batch.set(p, s, rng.next_bool());
    }
  }
  const PatternBatch lo = batch.slice(0, 64);
  const PatternBatch hi = batch.slice(64, 64);
  EXPECT_EQ(lo.tail_mask(), ~std::uint64_t{0});
  EXPECT_EQ(hi.tail_mask(), ~std::uint64_t{0});
  PatternBatch rebuilt(2, 128);
  rebuilt.paste(lo, 0);
  rebuilt.paste(hi, 64);
  EXPECT_EQ(rebuilt, batch);
}

TEST(PatternBatchTest, CopyPatternsFromValidatesRanges) {
  PatternBatch src(2, 50);
  PatternBatch dst(2, 50);
  PatternBatch narrow(1, 50);
  EXPECT_THROW(narrow.copy_patterns_from(src, 0, 0, 10), Error);
  EXPECT_THROW(dst.copy_patterns_from(src, 45, 0, 10), Error);
  EXPECT_THROW(dst.copy_patterns_from(src, 0, 45, 10), Error);
  EXPECT_NO_THROW(dst.copy_patterns_from(src, 0, 0, 50));
}

TEST(EvaluatorTest, BitPackedFusionMatchesSeparateEvaluation) {
  // The premise of serve's cross-connection coalescing: every batch
  // kernel is bit-local (output bit b of lane word w depends only on
  // bit b of word w of the inputs), so many small batches packed
  // back-to-back at BIT granularity evaluate to exactly the
  // concatenation of their separate results — no word alignment
  // between requests required.
  const Cover cover =
      Cover::parse(4, 3, {"11-- 101", "0-1- 010", "-01- 110", "1--1 011"});
  const GnorPla pla = GnorPla::map_cover(cover);
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<PatternBatch> requests;
    std::uint64_t total = 0;
    const int n = 2 + static_cast<int>(rng.next_u64() % 6);
    for (int r = 0; r < n; ++r) {
      const std::uint64_t np = 1 + rng.next_u64() % 90;  // straddles words
      PatternBatch batch(pla.num_inputs(), np);
      for (std::uint64_t p = 0; p < np; ++p) {
        for (int s = 0; s < pla.num_inputs(); ++s) {
          batch.set(p, s, rng.next_bool());
        }
      }
      total += np;
      requests.push_back(std::move(batch));
    }
    PatternBatch fused(pla.num_inputs(), total);
    std::uint64_t first = 0;
    for (const PatternBatch& request : requests) {
      fused.copy_patterns_from(request, 0, first, request.num_patterns());
      first += request.num_patterns();
    }
    const PatternBatch fused_out = pla.evaluate_batch(fused);
    first = 0;
    for (const PatternBatch& request : requests) {
      const PatternBatch expected = pla.evaluate_batch(request);
      PatternBatch got(pla.num_outputs(), request.num_patterns());
      got.copy_patterns_from(fused_out, first, 0, request.num_patterns());
      ASSERT_EQ(got, expected) << "trial=" << trial;
      first += request.num_patterns();
    }
  }
}

TEST(PatternBatchTest, WordIoRoundTrip) {
  // load_words/store_words carry the serve EVALB frame: lane-major,
  // words_per_lane words per signal. 150 patterns = a 22-bit tail word.
  PatternBatch batch(3, 150);
  Rng rng(11);
  for (std::uint64_t p = 0; p < 150; ++p) {
    for (int s = 0; s < 3; ++s) {
      batch.set(p, s, rng.next_bool());
    }
  }
  EXPECT_EQ(batch.total_words(), 3u * 3u);
  std::vector<std::uint64_t> words(batch.total_words());
  batch.store_words(words.data(), words.size());
  // The wire layout is the lanes back to back.
  for (int s = 0; s < 3; ++s) {
    for (std::uint64_t w = 0; w < batch.words_per_lane(); ++w) {
      EXPECT_EQ(words[static_cast<std::size_t>(s) * batch.words_per_lane() + w],
                batch.lane(s)[w]);
    }
  }
  PatternBatch rebuilt(3, 150);
  rebuilt.load_words(words.data(), words.size());
  EXPECT_EQ(rebuilt, batch);
}

TEST(PatternBatchTest, LoadWordsMasksTailPadding) {
  // A frame with stray bits beyond num_patterns must come out clean —
  // word-parallel kernels rely on zero tail padding.
  PatternBatch batch(2, 70);  // words_per_lane = 2, 6-bit tail
  std::vector<std::uint64_t> words(batch.total_words(),
                                   ~std::uint64_t{0});  // all bits set
  batch.load_words(words.data(), words.size());
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(batch.lane(s)[0], ~std::uint64_t{0});
    EXPECT_EQ(batch.lane(s)[1] & ~batch.tail_mask(), 0u);
    EXPECT_EQ(batch.lane(s)[1], batch.tail_mask());
  }
}

TEST(PatternBatchTest, WordIoRejectsWrongCounts) {
  PatternBatch batch(2, 70);
  std::vector<std::uint64_t> words(batch.total_words() + 1);
  EXPECT_THROW(batch.load_words(words.data(), words.size()), Error);
  EXPECT_THROW(batch.store_words(words.data(), batch.total_words() - 1),
               Error);
}

TEST(PatternBatchTest, SliceRejectsMisalignedAndOutOfRange) {
  const PatternBatch batch(1, 130);
  EXPECT_THROW(batch.slice(3, 64), Error);    // not word-aligned
  EXPECT_THROW(batch.slice(64, 100), Error);  // past the end
  EXPECT_THROW(batch.slice(0, 70), Error);    // partial word mid-batch
  PatternBatch dst(1, 130);
  EXPECT_THROW(dst.paste(batch.slice(0, 64), 32), Error);  // misaligned
  PatternBatch narrow(2, 64);
  EXPECT_THROW(dst.paste(narrow, 0), Error);  // signal count mismatch
}

// ---------------------------------------------------------------------------
// Sharded parallel evaluation: bit-identical to single-thread for every
// circuit type and for pattern counts that are NOT multiples of 64.
// ---------------------------------------------------------------------------

TEST(EvaluatorTest, ParallelBatchBitIdenticalToSequential) {
  const Cover f = Cover::parse(6, 3, {"11---- 100", "--11-- 010",
                                      "----11 001", "1--0-1 110",
                                      "0-1-0- 011"});
  const GnorPla pla = GnorPla::map_cover(f);
  ThreadPool pool(3);
  Rng rng(11);
  // 4000 patterns: 62 full words + a 32-bit tail; also a small batch
  // that falls through to the sequential path, and the exhaustive one.
  for (const std::uint64_t count : {40ull, 1000ull, 4000ull}) {
    PatternBatch inputs(6, count);
    for (std::uint64_t p = 0; p < count; ++p) {
      for (int s = 0; s < 6; ++s) {
        inputs.set(p, s, rng.next_bool());
      }
    }
    EXPECT_EQ(pla.evaluate_batch(inputs, pool), pla.evaluate_batch(inputs))
        << count << " patterns";
  }
  EXPECT_EQ(exhaustive_truth_table(pla, pool), exhaustive_truth_table(pla));
}

TEST(EvaluatorTest, ParallelBatchMatchesAcrossCircuitTypes) {
  const Cover f = Cover::parse(5, 2, {"11--- 10", "--1-1 01", "0--0- 11"});
  ThreadPool pool(4);
  const PatternBatch inputs = PatternBatch::exhaustive(5);
  const GnorPla gnor = GnorPla::map_cover(f);
  const ClassicalPla classical = ClassicalPla::map_cover(f);
  EXPECT_EQ(gnor.evaluate_batch(inputs, pool), gnor.evaluate_batch(inputs));
  EXPECT_EQ(classical.evaluate_batch(inputs, pool),
            classical.evaluate_batch(inputs));

  const Cover a = Cover::parse(5, 1, {"11--- 1"});
  const Cover b = Cover::parse(6, 1, {"--1--- 1", "-----1 1"});
  const Wpla wpla(a, b, 5);
  EXPECT_EQ(wpla.evaluate_batch(inputs, pool), wpla.evaluate_batch(inputs));
}

TEST(EvaluatorTest, ParallelBatchValidatesWidthAtBoundary) {
  const Cover f = Cover::parse(3, 1, {"11- 1"});
  const GnorPla pla = GnorPla::map_cover(f);
  ThreadPool pool(2);
  EXPECT_THROW(pla.evaluate_batch(PatternBatch(4, 100), pool), Error);
}

// ---------------------------------------------------------------------------
// Boundary pattern counts: one bit short of a word, an exact word, a
// word and a bit — where tail_mask flips between partial and all-ones —
// across every circuit type and every SIMD tier this host can run.
// ---------------------------------------------------------------------------

void expect_batch_matches_scalar_at_boundaries(const Evaluator& e,
                                               const char* what) {
  Rng rng(67);
  std::vector<cpu::SimdTier> tiers{cpu::SimdTier::kScalar};
  if (cpu::detected_tier() != cpu::SimdTier::kScalar) {
    tiers.push_back(cpu::detected_tier());
  }
  const cpu::SimdTier entry = cpu::active_tier();
  for (const std::uint64_t count :
       {1ull, 63ull, 64ull, 65ull, 127ull, 128ull, 129ull}) {
    PatternBatch inputs(e.num_inputs(), count);
    for (std::uint64_t p = 0; p < count; ++p) {
      for (int s = 0; s < e.num_inputs(); ++s) {
        inputs.set(p, s, rng.next_bool());
      }
    }
    // Scalar reference: one evaluate() per pattern.
    PatternBatch expected(e.num_outputs(), count);
    for (std::uint64_t p = 0; p < count; ++p) {
      const std::vector<bool> out = e.evaluate(inputs.pattern(p));
      for (int j = 0; j < e.num_outputs(); ++j) {
        expected.set(p, j, out[static_cast<std::size_t>(j)]);
      }
    }
    for (const cpu::SimdTier tier : tiers) {
      cpu::force_tier(tier);
      const PatternBatch got = e.evaluate_batch(inputs);
      EXPECT_EQ(got, expected) << what << " diverges at " << count
                               << " patterns on the " << cpu::tier_name(tier)
                               << " tier";
      got.assert_tail_clean("boundary-count batch result");
    }
  }
  cpu::force_tier(entry);
}

TEST(EvaluatorTest, BatchBoundaryCountsMatchScalarAcrossCircuitTypes) {
  const Cover f = Cover::parse(5, 3, {"11--- 100", "--1-1 010", "0--0- 111",
                                      "-10-1 001"});
  const GnorPla gnor = GnorPla::map_cover(f);
  expect_batch_matches_scalar_at_boundaries(gnor, "GnorPla");
  expect_batch_matches_scalar_at_boundaries(ClassicalPla::map_cover(f),
                                            "ClassicalPla");

  const Cover a = Cover::parse(5, 1, {"11--- 1", "--0-1 1"});
  const Cover b = Cover::parse(6, 1, {"--1--- 1", "-----1 1"});
  expect_batch_matches_scalar_at_boundaries(Wpla(a, b, 5), "Wpla");

  Fabric fabric(5);
  fabric.add_stage(FabricStage(Fabric::identity_routing(5, 5),
                               gnor.product_plane()));
  expect_batch_matches_scalar_at_boundaries(fabric, "Fabric");
}

TEST(EvaluatorTest, ZeroPatternBatchAcrossCircuitTypes) {
  // A 0-pattern batch is a legal (if pointless) request: the kernels
  // must return an empty, well-shaped result instead of tripping over a
  // zero-word lane.
  const Cover f = Cover::parse(4, 2, {"11-- 10", "--11 01"});
  const GnorPla gnor = GnorPla::map_cover(f);
  const ClassicalPla classical = ClassicalPla::map_cover(f);
  for (const Evaluator* e :
       {static_cast<const Evaluator*>(&gnor),
        static_cast<const Evaluator*>(&classical)}) {
    const PatternBatch out = e->evaluate_batch(PatternBatch(4, 0));
    EXPECT_EQ(out.num_patterns(), 0u);
    EXPECT_EQ(out.num_signals(), e->num_outputs());
    EXPECT_EQ(out.words_per_lane(), 0u);
  }
}

TEST(EvaluatorTest, ExhaustiveTruthTableMatchesCover) {
  const Cover f = Cover::parse(4, 2, {"11-- 10", "1-1- 10", "--11 01",
                                      "0--1 01"});
  const GnorPla pla = GnorPla::map_cover(f);
  EXPECT_EQ(exhaustive_truth_table(pla), TruthTable::from_cover(f));
  EXPECT_TRUE(equivalent(pla, TruthTable::from_cover(f)));
  // And the two architectures agree with each other.
  const ClassicalPla classical = ClassicalPla::map_cover(f);
  EXPECT_TRUE(equivalent(pla, classical));
}

TEST(EvaluatorTest, SpanEntryPointMatchesVectorEntryPoint) {
  const Cover f = Cover::parse(3, 1, {"11- 1", "0-1 1"});
  const GnorPla pla = GnorPla::map_cover(f);
  const bool raw[3] = {true, true, false};
  EXPECT_EQ(pla.evaluate(std::span<const bool>(raw)),
            pla.evaluate(std::vector<bool>{true, true, false}));
}

// ---------------------------------------------------------------------------
// Uniform width validation: every circuit type raises the SAME error,
// from the Evaluator boundary, on both the scalar and batch paths.
// ---------------------------------------------------------------------------

void expect_width_error(const Evaluator& e) {
  const std::vector<bool> wrong(static_cast<std::size_t>(e.num_inputs() + 1));
  const PatternBatch bad_batch(e.num_inputs() + 1, 10);
  for (const char* entry : {"scalar", "batch"}) {
    try {
      if (std::string(entry) == "scalar") {
        e.evaluate(wrong);
      } else {
        e.evaluate_batch(bad_batch);
      }
      FAIL() << entry << " path accepted a wrong-width input";
    } catch (const Error& err) {
      EXPECT_NE(std::string(err.what()).find("input width mismatch"),
                std::string::npos)
          << entry << " path raised a non-uniform error: " << err.what();
    }
  }
}

TEST(EvaluatorTest, WidthValidationIsUniformAcrossCircuitTypes) {
  const Cover f = Cover::parse(3, 1, {"11- 1", "0-1 1"});
  const GnorPla gnor = GnorPla::map_cover(f);
  expect_width_error(gnor);
  expect_width_error(ClassicalPla::map_cover(f));

  const Cover a = Cover::parse(3, 1, {"11- 1"});
  const Cover b = Cover::parse(4, 1, {"--1- 1", "---1 1"});
  expect_width_error(Wpla(a, b, 3));

  Fabric fabric(3);
  fabric.add_stage(FabricStage(Fabric::identity_routing(3, 3),
                               gnor.product_plane()));
  expect_width_error(fabric);
}

TEST(EvaluatorTest, CorrectWidthIsAcceptedAfterMismatch) {
  const Cover f = Cover::parse(2, 1, {"10 1"});
  const GnorPla pla = GnorPla::map_cover(f);
  EXPECT_THROW(pla.evaluate({true}), Error);
  EXPECT_NO_THROW(pla.evaluate({true, false}));
  EXPECT_THROW(pla.evaluate_batch(PatternBatch(3, 4)), Error);
  EXPECT_NO_THROW(pla.evaluate_batch(PatternBatch(2, 4)));
}

}  // namespace
}  // namespace ambit
