// Tests for the ThreadPool chunked parallel_for: exact coverage of the
// index range, deterministic partitioning, exception propagation out of
// workers, the inline zero-worker degenerate mode, and the
// fire-and-forget submit() path with its deadlock-free nesting rules
// (a worker that calls parallel_for runs it inline).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "util/error.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace ambit {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (const int workers : {0, 1, 3}) {
    ThreadPool pool(workers);
    for (const std::uint64_t count : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) {
        h.store(0);
      }
      pool.parallel_for(0, count, 3, [&](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1);
        }
      });
      for (std::uint64_t i = 0; i < count; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "workers=" << workers << " count=" << count << " i=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, NonZeroBeginRespected) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(10, 20, 1, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) {
      sum.fetch_add(i);
    }
  });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, ChunkPartitionIsDeterministic) {
  // The chunk boundaries must be a pure function of the arguments, not
  // of scheduling: run the same range twice and compare the recorded
  // partitions.
  ThreadPool pool(3);
  const auto record = [&pool] {
    // Lock-free recording: chunk bodies must not acquire locks (the
    // repo concurrency lint enforces this), so chunks land in a
    // pre-sized slot array claimed through an atomic cursor.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> slots(997);
    std::atomic<std::size_t> cursor{0};
    pool.parallel_for(0, 997, 10, [&](std::uint64_t lo, std::uint64_t hi) {
      slots[cursor.fetch_add(1)] = {lo, hi};
    });
    return std::set<std::pair<std::uint64_t, std::uint64_t>>(
        slots.begin(), slots.begin() + static_cast<std::ptrdiff_t>(
                                           cursor.load()));
  };
  EXPECT_EQ(record(), record());
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (const int workers : {0, 2}) {
    ThreadPool pool(workers);
    EXPECT_THROW(
        pool.parallel_for(0, 100, 1,
                          [](std::uint64_t, std::uint64_t hi) {
                            if (hi > 40) {
                              throw Error("worker failure");
                            }
                          }),
        Error)
        << "workers=" << workers;
    // The pool must stay usable after a throwing body.
    std::atomic<int> count{0};
    pool.parallel_for(0, 10, 1, [&](std::uint64_t lo, std::uint64_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ThreadPoolTest, ManySuccessiveCallsReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 64, 4, [&](std::uint64_t lo, std::uint64_t hi) {
      total.fetch_add(hi - lo);
    });
  }
  EXPECT_EQ(total.load(), 50u * 64u);
}

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, 1,
                    [&](std::uint64_t, std::uint64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, NegativeWorkerCountRejected) {
  EXPECT_THROW(ThreadPool(-1), Error);
}

TEST(ThreadPoolTest, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::default_workers(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(3);
  constexpr int kTasks = 200;
  std::atomic<int> done{0};
  Mutex mutex(LockRank::kTest);
  CondVar all_done;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        const MutexLock lock(mutex);
        all_done.notify_one();
      }
    });
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  MutexLock lock(mutex);
  while (done.load() != kTasks &&
         all_done.wait_until(lock, deadline) != std::cv_status::timeout) {
  }
  ASSERT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitSwallowsTaskExceptions) {
  // A submitted task owns its own error reporting: a throw must not
  // take down the worker (later tasks still run) or the process.
  ThreadPool pool(1);
  std::atomic<bool> ran_after{false};
  Mutex mutex(LockRank::kTest);
  CondVar cv;
  pool.submit([] { throw Error("submitted task failure"); });
  pool.submit([&] {
    ran_after.store(true);
    const MutexLock lock(mutex);
    cv.notify_one();
  });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  MutexLock lock(mutex);
  while (!ran_after.load() &&
         cv.wait_until(lock, deadline) != std::cv_status::timeout) {
  }
  ASSERT_TRUE(ran_after.load());
}

TEST(ThreadPoolTest, SubmitOnZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);  // no workers: submit degenerates to a direct call
}

TEST(ThreadPoolTest, WorkerSeesItselfOnWorkerThread) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  std::atomic<int> on_worker{0};
  pool.parallel_for(0, 2, 1, [&](std::uint64_t, std::uint64_t) {
    if (pool.on_worker_thread()) {
      on_worker.fetch_add(1);
    }
  });
  EXPECT_FALSE(pool.on_worker_thread());
  EXPECT_GE(on_worker.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForFromSubmittedTaskCannotDeadlock) {
  // The serve event loop submits request jobs that themselves call
  // parallel_for on the SAME pool (sharded EVAL). With every worker
  // busy on such a job, a queue-and-wait nested call would park all
  // workers on work only they could drain — so nested calls run
  // inline on the worker, and saturating the pool with them must
  // still complete.
  ThreadPool pool(2);
  constexpr int kJobs = 8;  // > workers: saturation is the point
  std::atomic<std::uint64_t> covered{0};
  std::atomic<int> jobs_done{0};
  Mutex mutex(LockRank::kTest);
  CondVar cv;
  for (int j = 0; j < kJobs; ++j) {
    pool.submit([&] {
      pool.parallel_for(0, 64, 8, [&](std::uint64_t lo, std::uint64_t hi) {
        covered.fetch_add(hi - lo);
      });
      if (jobs_done.fetch_add(1) + 1 == kJobs) {
        const MutexLock lock(mutex);
        cv.notify_one();
      }
    });
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  MutexLock lock(mutex);
  while (jobs_done.load() != kJobs &&
         cv.wait_until(lock, deadline) != std::cv_status::timeout) {
  }
  ASSERT_EQ(jobs_done.load(), kJobs);
  EXPECT_EQ(covered.load(), kJobs * 64u);
}

}  // namespace
}  // namespace ambit
