// Tests for the defect / repair / yield framework.
#include <gtest/gtest.h>

#include "espresso/espresso.h"
#include "fault/yield.h"
#include "logic/synth_bench.h"
#include "logic/truth_table.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace ambit::fault {
namespace {

using core::CellConfig;
using core::GnorPla;
using logic::Cover;

GnorPla sample_pla() {
  const Cover f =
      Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11", "-01 10"});
  return GnorPla::map_cover(f);
}

TEST(DefectMapTest, AddAndLookup) {
  DefectMap map(3, 4);
  EXPECT_EQ(map.count(), 0u);
  EXPECT_EQ(map.at(1, 2), nullptr);
  map.add(Defect{.row = 1, .col = 2, .type = DefectType::kStuckN});
  ASSERT_NE(map.at(1, 2), nullptr);
  EXPECT_EQ(map.at(1, 2)->type, DefectType::kStuckN);
  EXPECT_EQ(map.at(0, 0), nullptr);
}

TEST(DefectMapTest, DuplicateAndOutOfRangeRejected) {
  DefectMap map(2, 2);
  map.add(Defect{.row = 0, .col = 0, .type = DefectType::kStuckOff});
  EXPECT_THROW(map.add(Defect{.row = 0, .col = 0}), ambit::Error);
  EXPECT_THROW(map.add(Defect{.row = 5, .col = 0}), ambit::Error);
}

TEST(DefectMapTest, CompatibilityRules) {
  const Defect off{.row = 0, .col = 0, .type = DefectType::kStuckOff};
  const Defect n{.row = 0, .col = 0, .type = DefectType::kStuckN};
  const Defect p{.row = 0, .col = 0, .type = DefectType::kStuckP};
  EXPECT_TRUE(DefectMap::compatible(nullptr, CellConfig::kPass));
  EXPECT_TRUE(DefectMap::compatible(&off, CellConfig::kOff));
  EXPECT_FALSE(DefectMap::compatible(&off, CellConfig::kPass));
  EXPECT_TRUE(DefectMap::compatible(&n, CellConfig::kPass));
  EXPECT_FALSE(DefectMap::compatible(&n, CellConfig::kInvert));
  EXPECT_TRUE(DefectMap::compatible(&p, CellConfig::kInvert));
  EXPECT_FALSE(DefectMap::compatible(&p, CellConfig::kOff));
}

TEST(DefectSamplingTest, RateZeroAndDeterminism) {
  Rng rng(5);
  EXPECT_EQ(sample_defects(10, 10, 0.0, rng).count(), 0u);
  Rng a(7), b(7);
  const DefectMap ma = sample_defects(20, 20, 0.1, a);
  const DefectMap mb = sample_defects(20, 20, 0.1, b);
  EXPECT_EQ(ma.count(), mb.count());
}

TEST(DefectSamplingTest, RateRoughlyRespected) {
  Rng rng(11);
  const DefectMap map = sample_defects(100, 100, 0.05, rng);
  EXPECT_NEAR(static_cast<double>(map.count()) / 10000.0, 0.05, 0.01);
}

TEST(RepairTest, HealthyArrayIdentityAssignment) {
  const GnorPla pla = sample_pla();
  const DefectMap healthy(pla.num_products(), pla.num_inputs());
  const RepairResult result = repair_product_plane(pla, healthy, 0);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.relocated, 0);
  for (int p = 0; p < pla.num_products(); ++p) {
    EXPECT_EQ(result.row_of_product[static_cast<std::size_t>(p)], p);
  }
}

TEST(RepairTest, IncompatibleDefectForcesRelocation) {
  const GnorPla pla = sample_pla();
  // Product 0 is "11-": col 0 needs kInvert. A stuck-n defect there
  // breaks row 0 for product 0.
  DefectMap defects(pla.num_products() + 1, pla.num_inputs());
  defects.add(Defect{.row = 0, .col = 0, .type = DefectType::kStuckN});
  const RepairResult result = repair_product_plane(pla, defects, 1);
  ASSERT_TRUE(result.success);
  EXPECT_GT(result.relocated, 0);
  EXPECT_NE(result.row_of_product[0], 0);
}

TEST(RepairTest, CompatibleDefectNeedsNoRelocation) {
  const GnorPla pla = sample_pla();
  // Product 0 ("11-") needs kInvert at col 0: a stuck-p defect there
  // is harmless.
  DefectMap defects(pla.num_products(), pla.num_inputs());
  defects.add(Defect{.row = 0, .col = 0, .type = DefectType::kStuckP});
  const RepairResult result = repair_product_plane(pla, defects, 0);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.relocated, 0);
}

TEST(RepairTest, UnrepairableWithoutSpares) {
  const GnorPla pla = sample_pla();
  // Break column 0 of every row for every config except kOff.
  DefectMap defects(pla.num_products(), pla.num_inputs());
  for (int r = 0; r < pla.num_products(); ++r) {
    defects.add(Defect{.row = r, .col = 0, .type = DefectType::kStuckOff});
  }
  const RepairResult result = repair_product_plane(pla, defects, 0);
  EXPECT_FALSE(result.success);
}

TEST(RepairTest, SparesRescueBrokenRows) {
  const GnorPla pla = sample_pla();
  const int spares = 2;
  DefectMap defects(pla.num_products() + spares, pla.num_inputs());
  // Rows 0 and 1 fully broken (stuck-off everywhere breaks any literal).
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < pla.num_inputs(); ++c) {
      defects.add(Defect{.row = r, .col = c, .type = DefectType::kStuckOff});
    }
  }
  const RepairResult result = repair_product_plane(pla, defects, spares);
  ASSERT_TRUE(result.success);
  for (int p = 0; p < pla.num_products(); ++p) {
    EXPECT_GE(result.row_of_product[static_cast<std::size_t>(p)], 2);
  }
}

TEST(RepairTest, AppliedRepairPreservesFunction) {
  const Cover f =
      Cover::parse(4, 2, {"11-- 10", "0-1- 01", "10-1 11", "--01 10"});
  const GnorPla pla = GnorPla::map_cover(f);
  const int spares = 2;
  Rng rng(31);
  const DefectMap defects = sample_defects(pla.num_products() + spares,
                                           pla.num_inputs(), 0.08, rng);
  const RepairResult repair = repair_product_plane(pla, defects, spares);
  if (!repair.success) {
    GTEST_SKIP() << "sampled defects unrepairable; covered elsewhere";
  }
  const GnorPla physical = apply_repair(pla, repair, spares);
  EXPECT_TRUE(equivalent(physical, logic::TruthTable::from_cover(f)));
}

TEST(YieldTest, ZeroDefectsGiveFullYield) {
  const GnorPla pla = sample_pla();
  const auto curve = yield_sweep(pla, {0.0}, YieldSpec{.trials = 20});
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].naive_yield, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].repaired_yield, 1.0);
}

TEST(YieldTest, RepairNeverWorseThanNaive) {
  logic::SynthSpec spec{.num_inputs = 6, .num_outputs = 3, .num_cubes = 12,
                        .literals_per_cube = 4};
  const Cover f = espresso::minimize(logic::generate_cover(spec, 4)).cover;
  const GnorPla pla = GnorPla::map_cover(f);
  const auto curve = yield_sweep(pla, {0.005, 0.02, 0.05},
                                 YieldSpec{.spare_rows = 3, .trials = 60});
  for (const auto& point : curve) {
    EXPECT_GE(point.repaired_yield, point.naive_yield)
        << "rate " << point.defect_rate;
  }
}

TEST(YieldTest, YieldDecreasesWithDefectRate) {
  const GnorPla pla = sample_pla();
  const auto curve = yield_sweep(pla, {0.0, 0.05, 0.25},
                                 YieldSpec{.spare_rows = 1, .trials = 80});
  EXPECT_GE(curve[0].repaired_yield, curve[1].repaired_yield);
  EXPECT_GE(curve[1].repaired_yield, curve[2].repaired_yield);
}

TEST(YieldTest, ParallelSweepBitIdenticalToSequential) {
  // The tentpole reproducibility requirement: fanning the Monte-Carlo
  // trials across workers must not move the curve AT ALL, because every
  // trial draws from its own (seed, trial index) RNG stream. Compare
  // exact doubles, not tolerances.
  const GnorPla pla = sample_pla();
  const std::vector<double> rates = {0.0, 0.02, 0.08, 0.2};
  const YieldSpec sequential{.spare_rows = 2, .trials = 40, .seed = 7,
                             .functional_check = true, .workers = 1};
  YieldSpec parallel = sequential;
  parallel.workers = 4;
  const auto a = yield_sweep(pla, rates, sequential);
  const auto b = yield_sweep(pla, rates, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].naive_yield, b[i].naive_yield) << "rate index " << i;
    EXPECT_DOUBLE_EQ(a[i].repaired_yield, b[i].repaired_yield)
        << "rate index " << i;
    EXPECT_DOUBLE_EQ(a[i].functional_yield, b[i].functional_yield)
        << "rate index " << i;
    EXPECT_DOUBLE_EQ(a[i].mean_relocations, b[i].mean_relocations)
        << "rate index " << i;
  }
}

TEST(YieldTest, ExternalPoolOverloadMatchesOwnedPool) {
  const GnorPla pla = sample_pla();
  const YieldSpec spec{.spare_rows = 1, .trials = 30, .seed = 3};
  ThreadPool pool(3);
  const auto owned = yield_sweep(pla, {0.05}, spec);
  const auto external = yield_sweep(pla, {0.05}, spec, pool);
  ASSERT_EQ(owned.size(), external.size());
  EXPECT_DOUBLE_EQ(owned[0].repaired_yield, external[0].repaired_yield);
  EXPECT_DOUBLE_EQ(owned[0].naive_yield, external[0].naive_yield);
}

TEST(YieldTest, SparesImproveYield) {
  logic::SynthSpec spec{.num_inputs = 6, .num_outputs = 2, .num_cubes = 10,
                        .literals_per_cube = 4};
  const Cover f = espresso::minimize(logic::generate_cover(spec, 9)).cover;
  const GnorPla pla = GnorPla::map_cover(f);
  const auto none =
      yield_sweep(pla, {0.03}, YieldSpec{.spare_rows = 0, .trials = 100});
  const auto some =
      yield_sweep(pla, {0.03}, YieldSpec{.spare_rows = 4, .trials = 100});
  EXPECT_GT(some[0].repaired_yield, none[0].repaired_yield);
}

}  // namespace
}  // namespace ambit::fault
