// A strict lint over a Prometheus text-format 0.0.4 page, shared by
// metrics_test.cpp (the registry's own exposition) and serve_test.cpp
// (the same page fetched through the METRICS verb and the HTTP side
// listener). Kept header-only on purpose: tests/*.h is not globbed
// into a test executable, so both suites include the one checker and
// a format bug cannot pass in one transport while failing in another.
//
// What "lint" means here (the subset of the format the repo relies
// on, checked exactly):
//   * every non-comment line is `name{labels} value` or `name value`
//     with a parseable non-negative numeric value;
//   * every sample's family has a preceding # HELP and # TYPE line,
//     and # TYPE is one of counter|gauge|histogram;
//   * label values are double-quoted with only \\ \" \n escapes;
//   * histogram families expose _bucket/_sum/_count children, bucket
//     `le` bounds strictly increase, cumulative counts never decrease,
//     the +Inf bucket is present and equals _count;
//   * families appear in sorted order (the registry's determinism
//     contract) and no family is emitted twice.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ambit::testing_support {

/// One parsed sample line: metric name, raw label text (inside the
/// braces, possibly empty) and the numeric value.
struct PromSample {
  std::string name;
  std::string labels;
  double value = 0;
};

/// Splits `page` into lines (the final line may omit the newline).
inline std::vector<std::string> prom_lines(const std::string& page) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= page.size()) {
    const std::size_t eol = page.find('\n', start);
    if (eol == std::string::npos) {
      if (start < page.size()) {
        lines.push_back(page.substr(start));
      }
      break;
    }
    lines.push_back(page.substr(start, eol - start));
    start = eol + 1;
  }
  return lines;
}

inline bool prom_name_ok(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) {
    return false;
  }
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) {
      return false;
    }
  }
  return true;
}

/// Base family name for a sample: histogram children map back to the
/// family that declared them.
inline std::string prom_family_of(const std::string& sample_name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) == 0) {
      return sample_name.substr(0, sample_name.size() - s.size());
    }
  }
  return sample_name;
}

/// Extracts the value of label `key` from a raw label body, or "" when
/// absent. Assumes the body already passed the escaping lint.
inline std::string prom_label_value(const std::string& labels,
                                    const std::string& key) {
  const std::string needle = key + "=\"";
  std::size_t at = 0;
  while ((at = labels.find(needle, at)) != std::string::npos) {
    // Must start a label: beginning of body or right after a comma.
    if (at != 0 && labels[at - 1] != ',') {
      ++at;
      continue;
    }
    std::string value;
    for (std::size_t i = at + needle.size(); i < labels.size(); ++i) {
      if (labels[i] == '\\' && i + 1 < labels.size()) {
        value += labels[++i] == 'n' ? '\n' : labels[i];
      } else if (labels[i] == '"') {
        return value;
      } else {
        value += labels[i];
      }
    }
    return value;  // unterminated — the lint will have failed already
  }
  return "";
}

/// The label body minus one key (for grouping histogram buckets that
/// differ only in `le`).
inline std::string prom_labels_without(const std::string& labels,
                                       const std::string& key) {
  std::string out;
  std::size_t at = 0;
  while (at < labels.size()) {
    std::size_t comma = at;
    bool in_quotes = false;
    for (; comma < labels.size(); ++comma) {
      if (labels[comma] == '\\' && in_quotes) {
        ++comma;
      } else if (labels[comma] == '"') {
        in_quotes = !in_quotes;
      } else if (labels[comma] == ',' && !in_quotes) {
        break;
      }
    }
    const std::string piece = labels.substr(at, comma - at);
    if (piece.rfind(key + "=", 0) != 0) {
      if (!out.empty()) {
        out += ',';
      }
      out += piece;
    }
    at = comma + 1;
  }
  return out;
}

/// Full-page lint; every violation becomes a gtest failure annotated
/// with the offending line. Returns the parsed samples so callers can
/// go on to assert exact values.
inline std::vector<PromSample> lint_prometheus_page(const std::string& page) {
  std::vector<PromSample> samples;
  std::map<std::string, std::string> family_type;  // name -> TYPE
  std::set<std::string> family_help;
  std::vector<std::string> family_order;

  for (const std::string& line : prom_lines(page)) {
    if (line.empty()) {
      ADD_FAILURE() << "blank line in exposition page";
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      EXPECT_NE(sp, std::string::npos) << line;
      if (sp == std::string::npos) {
        continue;
      }
      const std::string name = line.substr(7, sp - 7);
      EXPECT_TRUE(prom_name_ok(name)) << line;
      EXPECT_TRUE(family_help.insert(name).second)
          << "family emitted twice: " << name;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t sp = line.find(' ', 7);
      EXPECT_NE(sp, std::string::npos) << line;
      if (sp == std::string::npos) {
        continue;
      }
      const std::string name = line.substr(7, sp - 7);
      const std::string type = line.substr(sp + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      EXPECT_EQ(family_help.count(name), 1u)
          << "# TYPE without preceding # HELP: " << line;
      EXPECT_EQ(family_type.count(name), 0u)
          << "# TYPE emitted twice: " << line;
      family_type[name] = type;
      if (!family_order.empty()) {
        EXPECT_LT(family_order.back(), name)
            << "families not in sorted order: " << name;
      }
      family_order.push_back(name);
      continue;
    }
    if (line[0] == '#') {
      ADD_FAILURE() << "unrecognized comment line: " << line;
      continue;
    }

    // Sample line: name[{labels}] SP value
    PromSample sample;
    std::size_t name_end = line.find_first_of("{ ");
    EXPECT_NE(name_end, std::string::npos) << line;
    if (name_end == std::string::npos) {
      continue;
    }
    sample.name = line.substr(0, name_end);
    EXPECT_TRUE(prom_name_ok(sample.name)) << line;
    std::size_t value_at = name_end;
    if (line[name_end] == '{') {
      bool in_quotes = false;
      std::size_t close = std::string::npos;
      for (std::size_t i = name_end + 1; i < line.size(); ++i) {
        if (line[i] == '\\' && in_quotes) {
          // Only \\ \" \n are legal escapes in label values.
          EXPECT_LT(i + 1, line.size()) << line;
          if (i + 1 >= line.size()) {
            break;
          }
          const char e = line[i + 1];
          EXPECT_TRUE(e == '\\' || e == '"' || e == 'n') << line;
          ++i;
        } else if (line[i] == '"') {
          in_quotes = !in_quotes;
        } else if (line[i] == '}' && !in_quotes) {
          close = i;
          break;
        }
      }
      EXPECT_NE(close, std::string::npos) << "unclosed label set: " << line;
      if (close == std::string::npos) {
        continue;
      }
      sample.labels = line.substr(name_end + 1, close - name_end - 1);
      value_at = close + 1;
    }
    const bool value_framed = value_at < line.size() &&
                              line[value_at] == ' ' &&
                              value_at + 1 < line.size();
    EXPECT_TRUE(value_framed) << "no value after name/labels: " << line;
    if (!value_framed) {
      continue;
    }
    const std::string value_text = line.substr(value_at + 1);
    if (value_text == "+Inf") {
      sample.value = 1e308 * 10;  // rendered only for le labels, not values
      ADD_FAILURE() << "+Inf as a sample value: " << line;
    } else {
      std::size_t parsed = 0;
      sample.value = std::stod(value_text, &parsed);
      EXPECT_EQ(parsed, value_text.size()) << "trailing junk: " << line;
      EXPECT_GE(sample.value, 0.0) << line;
    }
    const std::string family = prom_family_of(sample.name);
    EXPECT_EQ(family_type.count(family), 1u)
        << "sample before its # TYPE: " << line;
    if (family_type.count(family) != 0u) {
      const bool is_child = sample.name != family;
      EXPECT_EQ(is_child, family_type[family] == "histogram") << line;
    }
    samples.push_back(sample);
  }

  // Histogram coherence: per (family, labels-minus-le) group the
  // buckets must increase in bound, be cumulative, end at +Inf, and
  // agree with the _count sample.
  struct Group {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool saw_inf = false;
    double inf_count = 0;
    double count = 0;
    bool saw_count = false;
    bool saw_sum = false;
  };
  std::map<std::string, Group> groups;
  for (const PromSample& s : samples) {
    const std::string family = prom_family_of(s.name);
    if (family_type[family] != "histogram") {
      continue;
    }
    const std::string key =
        family + "|" + prom_labels_without(s.labels, "le");
    Group& g = groups[key];
    if (s.name == family + "_bucket") {
      const std::string le = prom_label_value(s.labels, "le");
      EXPECT_FALSE(le.empty()) << "bucket without le: " << s.name;
      if (le == "+Inf") {
        g.saw_inf = true;
        g.inf_count = s.value;
      } else {
        g.buckets.emplace_back(std::stod(le), s.value);
      }
    } else if (s.name == family + "_count") {
      g.saw_count = true;
      g.count = s.value;
    } else if (s.name == family + "_sum") {
      g.saw_sum = true;
    }
  }
  for (const auto& [key, g] : groups) {
    EXPECT_TRUE(g.saw_inf) << "no +Inf bucket: " << key;
    EXPECT_TRUE(g.saw_count) << "no _count: " << key;
    EXPECT_TRUE(g.saw_sum) << "no _sum: " << key;
    for (std::size_t i = 1; i < g.buckets.size(); ++i) {
      EXPECT_LT(g.buckets[i - 1].first, g.buckets[i].first)
          << "le bounds not increasing: " << key;
      EXPECT_LE(g.buckets[i - 1].second, g.buckets[i].second)
          << "bucket counts not cumulative: " << key;
    }
    if (!g.buckets.empty()) {
      EXPECT_LE(g.buckets.back().second, g.inf_count) << key;
    }
    EXPECT_EQ(g.inf_count, g.count)
        << "+Inf bucket disagrees with _count: " << key;
  }
  return samples;
}

/// The value of sample `name` (with exact raw label body `labels`), or
/// -1 with a test failure when absent.
inline double prom_value(const std::vector<PromSample>& samples,
                         const std::string& name,
                         const std::string& labels = "") {
  for (const PromSample& s : samples) {
    if (s.name == name && s.labels == labels) {
      return s.value;
    }
  }
  ADD_FAILURE() << "sample not found: " << name << "{" << labels << "}";
  return -1;
}

}  // namespace ambit::testing_support
