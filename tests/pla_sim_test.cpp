// Tests for the transistor-level GNOR-PLA simulator: agreement with the
// functional model, dynamic timing behaviour, fault injection.
#include <gtest/gtest.h>

#include "espresso/espresso.h"
#include "logic/synth_bench.h"
#include "logic/truth_table.h"
#include "simulate/pla_sim.h"
#include "util/rng.h"

namespace ambit::simulate {
namespace {

using core::CellConfig;
using core::GnorPla;
using core::PolarityState;
using logic::Cover;
using tech::default_cnfet_electrical;

std::vector<bool> bits_of(std::uint64_t m, int n) {
  std::vector<bool> bits(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    bits[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
  }
  return bits;
}

TEST(PlaSimTest, ExorMatchesFunctionalModel) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const GnorPla pla = GnorPla::map_cover(f);
  GnorPlaSimulator sim(pla, default_cnfet_electrical());
  for (std::uint64_t m = 0; m < 4; ++m) {
    const auto in = bits_of(m, 2);
    const auto result = sim.run_cycle(in);
    ASSERT_EQ(result.outputs.size(), 1u);
    ASSERT_TRUE(is_definite(result.outputs[0]));
    EXPECT_EQ(result.outputs[0] == Logic::k1, pla.evaluate(in)[0])
        << "minterm " << m;
  }
}

TEST(PlaSimTest, ProductLinesObservable) {
  const Cover f = Cover::parse(3, 1, {"11- 1", "0-1 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  const auto result = sim.run_cycle({true, true, false});
  ASSERT_EQ(result.product_lines.size(), 2u);
  EXPECT_EQ(result.product_lines[0], Logic::k1);
  EXPECT_EQ(result.product_lines[1], Logic::k0);
}

TEST(PlaSimTest, TimingComponentsArePositive) {
  const Cover f = Cover::parse(3, 2, {"11- 10", "0-1 01", "1-1 11"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  const auto result = sim.run_cycle({true, true, true});
  EXPECT_GT(result.precharge_delay_s, 0);
  EXPECT_GT(result.cycle_s(), result.precharge_delay_s);
}

TEST(PlaSimTest, WiderPlaneIsSlower) {
  // More input columns -> more row capacitance -> slower evaluate.
  const auto e = default_cnfet_electrical();
  logic::SynthSpec narrow{.num_inputs = 4, .num_outputs = 1, .num_cubes = 4,
                          .literals_per_cube = 3};
  logic::SynthSpec wide{.num_inputs = 16, .num_outputs = 1, .num_cubes = 4,
                        .literals_per_cube = 3};
  const Cover fn = logic::generate_cover(narrow, 5);
  const Cover fw = logic::generate_cover(wide, 5);
  GnorPlaSimulator sim_n(GnorPla::map_cover(fn), e);
  GnorPlaSimulator sim_w(GnorPla::map_cover(fw), e);
  // Pick inputs that fire at least one product in both (all-ones covers
  // nothing in general, so just compare precharge, which is
  // load-dependent only).
  const auto rn = sim_n.run_cycle(std::vector<bool>(4, false));
  const auto rw = sim_w.run_cycle(std::vector<bool>(16, false));
  EXPECT_GT(rw.precharge_delay_s, rn.precharge_delay_s);
}

TEST(PlaSimTest, StuckOffFaultDropsProduct) {
  // f = x0·x1; breaking the x0 cell turns the product into NOR(x̄1)=x1.
  const Cover f = Cover::parse(2, 1, {"11 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  // Healthy: 01 input (x0=0) -> output 0.
  EXPECT_EQ(sim.run_cycle({false, true}).outputs[0], Logic::k0);
  // Stuck-off fault on the x0 cell (plane 1, row 0, col 0).
  sim.override_cell(1, 0, 0, PolarityState::kOff);
  EXPECT_EQ(sim.run_cycle({false, true}).outputs[0], Logic::k1);
}

TEST(PlaSimTest, StuckWrongPolarityFlipsLiteral)  {
  // f = x0: cell is kInvert (p-type). Stuck n-type computes x̄0.
  const Cover f = Cover::parse(1, 1, {"1 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  EXPECT_EQ(sim.run_cycle({true}).outputs[0], Logic::k1);
  sim.override_cell(1, 0, 0, PolarityState::kNType);
  EXPECT_EQ(sim.run_cycle({true}).outputs[0], Logic::k0);
  EXPECT_EQ(sim.run_cycle({false}).outputs[0], Logic::k1);
}

TEST(PlaSimTest, OutputPlaneFaultDisconnectsProduct) {
  const Cover f = Cover::parse(2, 1, {"1- 1", "-1 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  EXPECT_EQ(sim.run_cycle({true, false}).outputs[0], Logic::k1);
  // Disconnect product 0 from the output row.
  sim.override_cell(2, 0, 0, PolarityState::kOff);
  EXPECT_EQ(sim.run_cycle({true, false}).outputs[0], Logic::k0);
  EXPECT_EQ(sim.run_cycle({false, true}).outputs[0], Logic::k1);
}

// Parameterized equivalence sweep: simulator vs functional model vs
// original cover, on random minimized covers.
class PlaSimSweep : public testing::TestWithParam<int> {};

TEST_P(PlaSimSweep, MatchesFunctionalModelExhaustively) {
  const int ni = GetParam();
  logic::SynthSpec spec{.num_inputs = ni, .num_outputs = 2,
                        .num_cubes = 2 * ni, .literals_per_cube = (ni + 1) / 2,
                        .extra_output_rate = 0.2};
  const Cover raw = logic::generate_cover(spec, 77 + ni);
  const Cover f = espresso::minimize(raw).cover;
  const GnorPla pla = GnorPla::map_cover(f);
  GnorPlaSimulator sim(pla, default_cnfet_electrical());
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << ni); ++m) {
    const auto in = bits_of(m, ni);
    const auto expected = pla.evaluate(in);
    const auto got = sim.run_cycle(in);
    for (std::size_t j = 0; j < expected.size(); ++j) {
      ASSERT_TRUE(is_definite(got.outputs[j]));
      ASSERT_EQ(got.outputs[j] == Logic::k1, expected[j])
          << "minterm " << m << " output " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(InputSizes, PlaSimSweep, testing::Values(3, 4, 5, 6),
                         [](const testing::TestParamInfo<int>& info) {
                           return "i" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ambit::simulate
