// Tests for the transistor-level GNOR-PLA simulator: agreement with the
// functional model, dynamic timing behaviour, fault injection, the
// word-packed batch path (bit-identical to scalar simulate() for any
// worker count), the Fig. 2 timing golden values, and the SimEvaluator
// adapter that makes the simulator a drop-in Evaluator oracle.
#include <gtest/gtest.h>

#include <thread>

#include "core/evaluator.h"
#include "core/fig2.h"
#include "espresso/espresso.h"
#include "logic/pattern_batch.h"
#include "logic/synth_bench.h"
#include "logic/truth_table.h"
#include "simulate/pla_sim.h"
#include "simulate/sim_evaluator.h"
#include "tech/delay_model.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ambit::simulate {
namespace {

using core::CellConfig;
using core::GnorPla;
using core::PolarityState;
using logic::Cover;
using logic::PatternBatch;
using tech::default_cnfet_electrical;

std::vector<bool> bits_of(std::uint64_t m, int n) {
  std::vector<bool> bits(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    bits[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
  }
  return bits;
}

TEST(PlaSimTest, ExorMatchesFunctionalModel) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const GnorPla pla = GnorPla::map_cover(f);
  GnorPlaSimulator sim(pla, default_cnfet_electrical());
  for (std::uint64_t m = 0; m < 4; ++m) {
    const auto in = bits_of(m, 2);
    const auto result = sim.run_cycle(in);
    ASSERT_EQ(result.outputs.size(), 1u);
    ASSERT_TRUE(is_definite(result.outputs[0]));
    EXPECT_EQ(result.outputs[0] == Logic::k1, pla.evaluate(in)[0])
        << "minterm " << m;
  }
}

TEST(PlaSimTest, ProductLinesObservable) {
  const Cover f = Cover::parse(3, 1, {"11- 1", "0-1 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  const auto result = sim.run_cycle({true, true, false});
  ASSERT_EQ(result.product_lines.size(), 2u);
  EXPECT_EQ(result.product_lines[0], Logic::k1);
  EXPECT_EQ(result.product_lines[1], Logic::k0);
}

TEST(PlaSimTest, TimingComponentsArePositive) {
  const Cover f = Cover::parse(3, 2, {"11- 10", "0-1 01", "1-1 11"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  const auto result = sim.run_cycle({true, true, true});
  EXPECT_GT(result.precharge_delay_s, 0);
  EXPECT_GT(result.cycle_s(), result.precharge_delay_s);
}

TEST(PlaSimTest, WiderPlaneIsSlower) {
  // More input columns -> more row capacitance -> slower evaluate.
  const auto e = default_cnfet_electrical();
  logic::SynthSpec narrow{.num_inputs = 4, .num_outputs = 1, .num_cubes = 4,
                          .literals_per_cube = 3};
  logic::SynthSpec wide{.num_inputs = 16, .num_outputs = 1, .num_cubes = 4,
                        .literals_per_cube = 3};
  const Cover fn = logic::generate_cover(narrow, 5);
  const Cover fw = logic::generate_cover(wide, 5);
  GnorPlaSimulator sim_n(GnorPla::map_cover(fn), e);
  GnorPlaSimulator sim_w(GnorPla::map_cover(fw), e);
  // Pick inputs that fire at least one product in both (all-ones covers
  // nothing in general, so just compare precharge, which is
  // load-dependent only).
  const auto rn = sim_n.run_cycle(std::vector<bool>(4, false));
  const auto rw = sim_w.run_cycle(std::vector<bool>(16, false));
  EXPECT_GT(rw.precharge_delay_s, rn.precharge_delay_s);
}

TEST(PlaSimTest, StuckOffFaultDropsProduct) {
  // f = x0·x1; breaking the x0 cell turns the product into NOR(x̄1)=x1.
  const Cover f = Cover::parse(2, 1, {"11 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  // Healthy: 01 input (x0=0) -> output 0.
  EXPECT_EQ(sim.run_cycle({false, true}).outputs[0], Logic::k0);
  // Stuck-off fault on the x0 cell (plane 1, row 0, col 0).
  sim.override_cell(1, 0, 0, PolarityState::kOff);
  EXPECT_EQ(sim.run_cycle({false, true}).outputs[0], Logic::k1);
}

TEST(PlaSimTest, StuckWrongPolarityFlipsLiteral)  {
  // f = x0: cell is kInvert (p-type). Stuck n-type computes x̄0.
  const Cover f = Cover::parse(1, 1, {"1 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  EXPECT_EQ(sim.run_cycle({true}).outputs[0], Logic::k1);
  sim.override_cell(1, 0, 0, PolarityState::kNType);
  EXPECT_EQ(sim.run_cycle({true}).outputs[0], Logic::k0);
  EXPECT_EQ(sim.run_cycle({false}).outputs[0], Logic::k1);
}

TEST(PlaSimTest, OutputPlaneFaultDisconnectsProduct) {
  const Cover f = Cover::parse(2, 1, {"1- 1", "-1 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  EXPECT_EQ(sim.run_cycle({true, false}).outputs[0], Logic::k1);
  // Disconnect product 0 from the output row.
  sim.override_cell(2, 0, 0, PolarityState::kOff);
  EXPECT_EQ(sim.run_cycle({true, false}).outputs[0], Logic::k0);
  EXPECT_EQ(sim.run_cycle({false, true}).outputs[0], Logic::k1);
}

// Parameterized equivalence sweep: simulator vs functional model vs
// original cover, on random minimized covers.
class PlaSimSweep : public testing::TestWithParam<int> {};

TEST_P(PlaSimSweep, MatchesFunctionalModelExhaustively) {
  const int ni = GetParam();
  logic::SynthSpec spec{.num_inputs = ni, .num_outputs = 2,
                        .num_cubes = 2 * ni, .literals_per_cube = (ni + 1) / 2,
                        .extra_output_rate = 0.2};
  const Cover raw = logic::generate_cover(spec, 77 + ni);
  const Cover f = espresso::minimize(raw).cover;
  const GnorPla pla = GnorPla::map_cover(f);
  GnorPlaSimulator sim(pla, default_cnfet_electrical());
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << ni); ++m) {
    const auto in = bits_of(m, ni);
    const auto expected = pla.evaluate(in);
    const auto got = sim.run_cycle(in);
    for (std::size_t j = 0; j < expected.size(); ++j) {
      ASSERT_TRUE(is_definite(got.outputs[j]));
      ASSERT_EQ(got.outputs[j] == Logic::k1, expected[j])
          << "minterm " << m << " output " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(InputSizes, PlaSimSweep, testing::Values(3, 4, 5, 6),
                         [](const testing::TestParamInfo<int>& info) {
                           return "i" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Batch path: simulate_batch vs scalar simulate(), vs the functional
// bit-parallel evaluators, and across worker counts.
// ---------------------------------------------------------------------------

/// A randomized minimized cover for batch sweeps.
Cover random_minimized_cover(int num_inputs, int num_outputs, int seed) {
  logic::SynthSpec spec{.num_inputs = num_inputs,
                        .num_outputs = num_outputs,
                        .num_cubes = 2 * num_inputs,
                        .literals_per_cube = (num_inputs + 1) / 2,
                        .extra_output_rate = 0.25};
  return espresso::minimize(logic::generate_cover(spec, seed)).cover;
}

/// A batch of `count` rng-drawn patterns over `width` signals, with the
/// edge lanes the cross-validation suite must include: pattern 0 is
/// all-zeros, pattern 1 all-ones, and the final patterns repeat them so
/// the constant lanes straddle the tail word too.
PatternBatch random_batch_with_edges(int width, std::uint64_t count,
                                     Rng& rng) {
  PatternBatch batch(width, count);
  for (std::uint64_t p = 0; p < count; ++p) {
    const bool constant = p < 2 || p + 2 >= count;
    const bool ones = constant ? (p % 2 == 1) : false;
    for (int i = 0; i < width; ++i) {
      batch.set(p, i, constant ? ones : rng.next_bool());
    }
  }
  return batch;
}

TEST(PlaSimBatchTest, MatchesScalarSimulateBitAndDelayExact) {
  // Word-straddling pattern count on randomized covers: outputs AND the
  // three per-pattern delays must equal scalar simulate() EXACTLY (the
  // delays with ==, not a tolerance — same arithmetic, same doubles).
  for (const int seed : {1, 2, 3}) {
    const Cover f = random_minimized_cover(3 + seed, 2, 31 * seed);
    const GnorPla pla = GnorPla::map_cover(f);
    GnorPlaSimulator sim(pla, default_cnfet_electrical());
    Rng rng(static_cast<std::uint64_t>(seed) * 977 + 5);
    const PatternBatch inputs =
        random_batch_with_edges(pla.num_inputs(), 257, rng);
    const BatchSimResult batch = sim.simulate_batch(inputs);
    ASSERT_TRUE(batch.all_definite());
    for (std::uint64_t p = 0; p < inputs.num_patterns(); ++p) {
      const PlaSimResult scalar = sim.simulate(inputs.pattern(p));
      for (int o = 0; o < pla.num_outputs(); ++o) {
        ASSERT_EQ(batch.outputs.get(p, o),
                  scalar.outputs[static_cast<std::size_t>(o)] == Logic::k1)
            << "seed " << seed << " pattern " << p << " output " << o;
      }
      ASSERT_EQ(batch.precharge_delay_s[p], scalar.precharge_delay_s)
          << "pattern " << p;
      ASSERT_EQ(batch.plane1_eval_delay_s[p], scalar.plane1_eval_delay_s)
          << "pattern " << p;
      ASSERT_EQ(batch.plane2_eval_delay_s[p], scalar.plane2_eval_delay_s)
          << "pattern " << p;
    }
  }
}

TEST(PlaSimBatchTest, CrossValidatesAgainstFunctionalBatch) {
  // The oracle role: >= 4k patterns of transistor-level settles checked
  // word-for-word against the logic-level bit-parallel kernel.
  const Cover f = random_minimized_cover(8, 3, 42);
  const GnorPla pla = GnorPla::map_cover(f);
  GnorPlaSimulator sim(pla, default_cnfet_electrical());
  Rng rng(4242);
  const PatternBatch inputs = random_batch_with_edges(8, 4096, rng);
  const BatchSimResult simulated = sim.simulate_batch(inputs);
  EXPECT_TRUE(simulated.all_definite());
  EXPECT_EQ(simulated.outputs, pla.evaluate_batch(inputs));
}

TEST(PlaSimBatchTest, ExhaustiveCrossValidationSmallCover) {
  // Exhaustive agreement on a minimized random cover, through the
  // truth-table identity of the batch layout.
  const Cover f = random_minimized_cover(6, 2, 7);
  const GnorPla pla = GnorPla::map_cover(f);
  GnorPlaSimulator sim(pla, default_cnfet_electrical());
  const PatternBatch all = PatternBatch::exhaustive(6);
  const BatchSimResult simulated = sim.simulate_batch(all);
  EXPECT_TRUE(simulated.all_definite());
  EXPECT_EQ(simulated.outputs, pla.evaluate_batch(all));
}

TEST(PlaSimBatchTest, WorkerCountDeterminism) {
  // 0 (no pool), 1, 4 and hardware-concurrency workers must produce
  // IDENTICAL packed words and delay vectors — the shard partition is
  // word-aligned and every pattern resets to the same state.
  const Cover f = random_minimized_cover(5, 2, 13);
  const GnorPla pla = GnorPla::map_cover(f);
  GnorPlaSimulator sim(pla, default_cnfet_electrical());
  Rng rng(999);
  const PatternBatch inputs =
      random_batch_with_edges(pla.num_inputs(), 1000, rng);
  const BatchSimResult reference = sim.simulate_batch(inputs, nullptr);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  for (const int workers : {1, 4, hw > 0 ? hw : 2}) {
    ThreadPool pool(workers);
    const BatchSimResult result = sim.simulate_batch(inputs, &pool);
    EXPECT_EQ(result.outputs, reference.outputs) << workers << " workers";
    EXPECT_EQ(result.definite, reference.definite) << workers << " workers";
    EXPECT_EQ(result.precharge_delay_s, reference.precharge_delay_s)
        << workers << " workers";
    EXPECT_EQ(result.plane1_eval_delay_s, reference.plane1_eval_delay_s)
        << workers << " workers";
    EXPECT_EQ(result.plane2_eval_delay_s, reference.plane2_eval_delay_s)
        << workers << " workers";
  }
}

TEST(PlaSimBatchTest, FaultOverridePersistsIntoBatch) {
  // f = x0·x1 with the x0 cell stuck off degrades to x1; the batch path
  // must sweep the OVERRIDDEN network (shards copy the fault too).
  const Cover f = Cover::parse(2, 1, {"11 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  sim.override_cell(1, 0, 0, PolarityState::kOff);
  const PatternBatch all = PatternBatch::exhaustive(2);
  const BatchSimResult faulty = sim.simulate_batch(all);
  ASSERT_TRUE(faulty.all_definite());
  for (std::uint64_t m = 0; m < 4; ++m) {
    EXPECT_EQ(faulty.outputs.get(m, 0), (m & 2) != 0) << "minterm " << m;
  }
}

TEST(PlaSimBatchTest, WidthMismatchThrows) {
  const Cover f = Cover::parse(3, 1, {"11- 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  EXPECT_THROW(sim.simulate_batch(PatternBatch(2, 8)), Error);
  EXPECT_THROW(sim.simulate_batch(PatternBatch(4, 8)), Error);
}

// ---------------------------------------------------------------------------
// Timing oracle: golden values on the Fig. 2 reference PLA and the
// worst-case cycle statistics.
// ---------------------------------------------------------------------------

using core::fig2_reference_pla;  // the shared Fig. 2 construction

constexpr double kLn2 = 0.6931471805599453;

TEST(PlaSimTimingTest, Fig2GoldenWorstCase) {
  // The switch-level worst-case phase delays reproduce the first-order
  // model of tech/delay_model.h from the network itself, with the
  // component terms the closed-form model folds away made explicit:
  //
  //   * precharge: every row hangs off VDD through its TPC, so the
  //     driven component carries BOTH row capacitances plus each
  //     conducting foot (worst pattern: a plane-1 cell conducts);
  //   * plane-1 evaluate: one cell + TEV in series (2 R_on), row plus
  //     its foot;
  //   * plane-2 evaluate: 2 R_on, output row plus its foot — plus the
  //     plane-1 foot of the unfired product row, which shares the GND
  //     component through its TEV.
  const tech::CnfetElectrical e = default_cnfet_electrical();
  const GnorPla pla = fig2_reference_pla();
  GnorPlaSimulator sim(pla, e);
  const BatchSimResult result =
      sim.simulate_batch(PatternBatch::exhaustive(4));
  ASSERT_TRUE(result.all_definite());

  // Functional polarity pinned: Y = NOR(A, B', D) itself, not its
  // complement (the inverting buffer tap undoes the plane-2 NOR — this
  // is the wrap bug bench_fig2_gnor shipped with).
  for (std::uint64_t m = 0; m < 16; ++m) {
    const bool a = (m & 1) != 0;
    const bool b = (m & 2) != 0;
    const bool d = (m & 8) != 0;
    EXPECT_EQ(result.outputs.get(m, 0), !(a || !b || d)) << "minterm " << m;
  }

  const double c1 = tech::gnor_row_capacitance_f(4, e);   // product row
  const double c2 = tech::gnor_row_capacitance_f(1, e);   // output row
  const double cf = e.c_cell_f;                           // one foot node
  const double expected_pre = kLn2 * e.r_on_ohm * (c1 + c2 + 2 * cf);
  const double expected_e1 = kLn2 * 2 * e.r_on_ohm * (c1 + cf);
  const double expected_e2 = kLn2 * 2 * e.r_on_ohm * (c2 + 2 * cf);
  EXPECT_NEAR(result.worst_precharge_s() / expected_pre, 1.0, 1e-9);
  EXPECT_NEAR(result.worst_plane1_eval_s() / expected_e1, 1.0, 1e-9);
  EXPECT_NEAR(result.worst_plane2_eval_s() / expected_e2, 1.0, 1e-9);

  // Golden picosecond values, checked in.
  EXPECT_NEAR(result.worst_precharge_s() * 1e12, 26.8594, 1e-3);
  EXPECT_NEAR(result.worst_plane1_eval_s() * 1e12, 39.8560, 1e-3);
  EXPECT_NEAR(result.worst_plane2_eval_s() * 1e12, 19.0615, 1e-3);
  EXPECT_NEAR(result.worst_cycle_s() * 1e12, 85.7769, 1e-3);

  // The first-order model is the same expression without the shared
  // component terms, so it bounds the simulated cycle from below and
  // agrees within the foot/TPC-sharing correction (< 1.6x here).
  const double model =
      tech::gnor_pla_cycle_s(pla.dimensions(), e);
  EXPECT_GT(result.worst_cycle_s(), model);
  EXPECT_LT(result.worst_cycle_s(), 1.6 * model);
}

TEST(PlaSimTimingTest, Fig2BatchDelaysEqualScalarRunCycle) {
  // The batch sweep's per-pattern delays equal per-pattern scalar
  // simulate() delays exactly, pattern for pattern.
  const tech::CnfetElectrical e = default_cnfet_electrical();
  GnorPlaSimulator sim(fig2_reference_pla(), e);
  const PatternBatch all = PatternBatch::exhaustive(4);
  const BatchSimResult batch = sim.simulate_batch(all);
  for (std::uint64_t m = 0; m < 16; ++m) {
    const PlaSimResult scalar = sim.simulate(all.pattern(m));
    EXPECT_EQ(batch.precharge_delay_s[m], scalar.precharge_delay_s)
        << "minterm " << m;
    EXPECT_EQ(batch.plane1_eval_delay_s[m], scalar.plane1_eval_delay_s)
        << "minterm " << m;
    EXPECT_EQ(batch.plane2_eval_delay_s[m], scalar.plane2_eval_delay_s)
        << "minterm " << m;
    EXPECT_EQ(batch.cycle_s(m), scalar.cycle_s()) << "minterm " << m;
  }
}

TEST(PlaSimTimingTest, WorstCaseCycleStatistics) {
  const tech::CnfetElectrical e = default_cnfet_electrical();
  GnorPlaSimulator sim(fig2_reference_pla(), e);
  const BatchSimResult result =
      sim.simulate_batch(PatternBatch::exhaustive(4));

  // worst_cycle_s is the clock period: the SUM of phase maxima — here
  // strictly larger than any single pattern's cycle, because firing
  // patterns stress plane 1 and non-firing patterns stress plane 2.
  double worst_single = 0;
  double total = 0;
  std::uint64_t argmax = 0;
  for (std::uint64_t m = 0; m < 16; ++m) {
    const double c = result.cycle_s(m);
    total += c;
    if (c > worst_single) {
      worst_single = c;
      argmax = m;
    }
  }
  EXPECT_EQ(result.critical_pattern(), argmax);
  EXPECT_NEAR(result.mean_cycle_s(), total / 16, 1e-24);
  EXPECT_GT(result.worst_cycle_s(), worst_single);
  EXPECT_LE(worst_single, result.worst_precharge_s() +
                              result.worst_plane1_eval_s() +
                              result.worst_plane2_eval_s());
}

// ---------------------------------------------------------------------------
// Four-valued robustness: all-X and floating stimuli degrade
// pessimistically and never corrupt later clean cycles.
// ---------------------------------------------------------------------------

TEST(PlaSimXTest, AllXInputsDegradeOutputsPessimistically) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  const PlaSimResult hazy =
      sim.run_cycle_logic({Logic::kX, Logic::kX});
  EXPECT_EQ(hazy.outputs[0], Logic::kX);
  // A clean boolean cycle afterwards recovers completely: simulate()
  // resets the retained X charge first.
  const PlaSimResult clean = sim.simulate({true, false});
  EXPECT_EQ(clean.outputs[0], Logic::k1);
}

TEST(PlaSimXTest, FloatingInputIsPessimisticNotGuessed) {
  const Cover f = Cover::parse(1, 1, {"1 1"});
  GnorPlaSimulator sim(GnorPla::map_cover(f), default_cnfet_electrical());
  const PlaSimResult floating = sim.run_cycle_logic({Logic::kZ});
  EXPECT_FALSE(is_definite(floating.outputs[0]));
  EXPECT_EQ(sim.simulate({true}).outputs[0], Logic::k1);
  EXPECT_EQ(sim.simulate({false}).outputs[0], Logic::k0);
}

// ---------------------------------------------------------------------------
// SimEvaluator: the simulator behind the unified Evaluator interface.
// ---------------------------------------------------------------------------

TEST(SimEvaluatorTest, EquivalentToMappedArrayExhaustively) {
  const Cover f = random_minimized_cover(5, 2, 17);
  const GnorPla pla = GnorPla::map_cover(f);
  const SimEvaluator sim_eval(pla, default_cnfet_electrical());
  EXPECT_EQ(sim_eval.num_inputs(), pla.num_inputs());
  EXPECT_EQ(sim_eval.num_outputs(), pla.num_outputs());
  // The generic equivalence harness drives the SIMULATOR as a regular
  // evaluator: exhaustive truth tables, word for word.
  EXPECT_TRUE(equivalent(sim_eval, pla));
}

TEST(SimEvaluatorTest, UniformWidthValidationAtTheBoundary) {
  const Cover f = Cover::parse(3, 1, {"1-1 1"});
  const SimEvaluator sim_eval(GnorPla::map_cover(f),
                              default_cnfet_electrical());
  EXPECT_THROW(sim_eval.evaluate(std::vector<bool>(2)), Error);
  EXPECT_THROW(sim_eval.evaluate_batch(PatternBatch(4, 8)), Error);
}

TEST(SimEvaluatorTest, BatchBoundaryCountsMatchScalarSimulation) {
  // Word-boundary pattern counts through the transistor-level oracle:
  // 63/64/65 straddle the tail-mask flip (partial → all-ones → fresh
  // word), where a batch kernel mishandling the final word would
  // diverge from per-pattern simulation.
  const Cover f = random_minimized_cover(4, 2, 31);
  const SimEvaluator sim_eval(GnorPla::map_cover(f),
                              default_cnfet_electrical());
  Rng rng(77);
  for (const std::uint64_t count : {63ull, 64ull, 65ull}) {
    PatternBatch inputs(sim_eval.num_inputs(), count);
    for (std::uint64_t p = 0; p < count; ++p) {
      for (int s = 0; s < sim_eval.num_inputs(); ++s) {
        inputs.set(p, s, rng.next_bool());
      }
    }
    PatternBatch expected(sim_eval.num_outputs(), count);
    for (std::uint64_t p = 0; p < count; ++p) {
      const std::vector<bool> out = sim_eval.evaluate(inputs.pattern(p));
      for (int j = 0; j < sim_eval.num_outputs(); ++j) {
        expected.set(p, j, out[static_cast<std::size_t>(j)]);
      }
    }
    EXPECT_EQ(sim_eval.evaluate_batch(inputs), expected)
        << count << " patterns";
  }
}

TEST(SimEvaluatorTest, PoolShardingIsBitIdentical) {
  const Cover f = random_minimized_cover(5, 2, 23);
  const SimEvaluator sim_eval(GnorPla::map_cover(f),
                              default_cnfet_electrical());
  Rng rng(555);
  const PatternBatch inputs =
      random_batch_with_edges(sim_eval.num_inputs(), 1500, rng);
  ThreadPool pool(4);
  EXPECT_EQ(sim_eval.evaluate_batch(inputs, pool),
            sim_eval.evaluate_batch(inputs));
}

}  // namespace
}  // namespace ambit::simulate
