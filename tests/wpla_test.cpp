// Tests for the Whirlpool-PLA structure and Doppio-Espresso synthesis.
#include <gtest/gtest.h>

#include "core/wpla.h"

#include "util/rng.h"
#include "espresso/espresso.h"
#include "logic/truth_table.h"
#include "util/error.h"

namespace ambit::core {
namespace {

using logic::Cover;
using logic::TruthTable;

std::vector<bool> bits_of(std::uint64_t m, int n) {
  std::vector<bool> bits(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    bits[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
  }
  return bits;
}

/// A function with plantable OR-structure: out0 = a 4-product SOP g
/// over inputs 0–4, out1 = g + private products over inputs 5–7,
/// out2 = g + other private products over inputs 5–7. The input-set
/// split is what makes the two WPLA stages narrow (each plane only
/// receives the columns it uses).
Cover structured_function() {
  return Cover::parse(8, 3,
                      {"11------ 111",   // shared x0·x1
                       "00--1--- 111",   // shared x̄0·x̄1·x4
                       "--110--- 111",   // shared x2·x3·x̄4
                       "-0-01--- 111",   // shared x̄1·x̄3·x4
                       "-----11- 010",   // out1 private
                       "-----00- 010",   // out1 private
                       "------01 001",   // out2 private
                       "-----1-1 001"}); // out2 private
}

TEST(WplaTest, StructureValidation) {
  const Cover a = Cover::parse(2, 1, {"11 1"});
  const Cover b_ok = Cover::parse(3, 1, {"--1 1"});
  EXPECT_NO_THROW(Wpla(a, b_ok, 2));
  const Cover b_bad = Cover::parse(2, 1, {"-1 1"});
  EXPECT_THROW(Wpla(a, b_bad, 2), ambit::Error);
}

TEST(WplaTest, CascadeEvaluatesComposition) {
  // g = x0·x1; f = g + x2  (stage B reads [x0 x1 x2 g]).
  const Cover a = Cover::parse(3, 1, {"11- 1"});
  const Cover b = Cover::parse(4, 1, {"--1- 1", "---1 1"});
  const Wpla wpla(a, b, 3);
  for (std::uint64_t m = 0; m < 8; ++m) {
    const auto in = bits_of(m, 3);
    const bool g = in[0] && in[1];
    const bool expected = g || in[2];
    EXPECT_EQ(wpla.evaluate(in)[0], expected) << "m=" << m;
  }
}

TEST(WplaTest, CellCountSumsStages) {
  const Cover a = Cover::parse(3, 1, {"11- 1"});
  const Cover b = Cover::parse(4, 1, {"--1- 1", "---1 1"});
  const Wpla wpla(a, b, 3);
  // Stage A: (3+1)*1; stage B: (4+1)*2.
  EXPECT_EQ(wpla.cell_count(), 4 + 10);
}

TEST(DoppioEspressoTest, FindsSharedDivisor) {
  const auto synth = synthesize_wpla(structured_function());
  EXPECT_FALSE(synth.intermediate_outputs.empty());
  // out0 (the contained product set) should be the divisor.
  EXPECT_EQ(synth.intermediate_outputs[0], 0);
}

TEST(DoppioEspressoTest, WplaSmallerThanFlatOnStructuredLogic) {
  const auto synth = synthesize_wpla(structured_function());
  EXPECT_LT(synth.wpla_cells, synth.flat_cells);
}

TEST(DoppioEspressoTest, SynthesizedWplaMatchesFunction) {
  const Cover f = structured_function();
  const auto synth = synthesize_wpla(f);
  const Wpla wpla(synth.stage_a, synth.stage_b, f.num_inputs());
  EXPECT_TRUE(equivalent(wpla, TruthTable::from_cover(f)));
}

TEST(DoppioEspressoTest, UnstructuredLogicDegradesGracefully) {
  // EXOR-ish outputs share nothing: no divisor, degenerate WPLA that
  // still computes the right function.
  const Cover f = Cover::parse(3, 2, {"10- 10", "01- 10", "-01 01", "-10 01"});
  const auto synth = synthesize_wpla(f);
  EXPECT_TRUE(synth.intermediate_outputs.empty());
  const Wpla wpla(synth.stage_a, synth.stage_b, 3);
  EXPECT_TRUE(equivalent(wpla, TruthTable::from_cover(f)));
}

TEST(DoppioEspressoTest, IntermediateForwardingPreservesDivisorOutput) {
  const Cover f = structured_function();
  const auto synth = synthesize_wpla(f);
  ASSERT_FALSE(synth.intermediate_outputs.empty());
  const Wpla wpla(synth.stage_a, synth.stage_b, f.num_inputs());
  const TruthTable expected = TruthTable::from_cover(f);
  const TruthTable actual = exhaustive_truth_table(wpla);
  const int g = synth.intermediate_outputs[0];
  for (std::uint64_t m = 0; m < expected.num_minterms(); ++m) {
    EXPECT_EQ(actual.get(m, g), expected.get(m, g)) << "minterm " << m;
  }
}

TEST(DoppioEspressoTest, RandomizedStructuredSweep) {
  // Build functions with planted shared cores and verify synthesis
  // end-to-end.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Cover f(6, 3);
    ambit::Rng rng(seed);
    // Two shared products asserted by all outputs.
    for (int s = 0; s < 2; ++s) {
      logic::Cube c(6, 3);
      for (int i = 0; i < 4; ++i) {
        c.set_input(static_cast<int>((s * 3 + i) % 6),
                    rng.next_bool() ? logic::Literal::kOne
                                    : logic::Literal::kZero);
      }
      for (int j = 0; j < 3; ++j) {
        c.set_output(j, true);
      }
      f.add(c);
    }
    // Private products for outputs 1 and 2.
    for (int j = 1; j <= 2; ++j) {
      for (int s = 0; s < 2; ++s) {
        logic::Cube c(6, 3);
        for (int i = 0; i < 3; ++i) {
          c.set_input(static_cast<int>(rng.next_below(6)),
                      rng.next_bool() ? logic::Literal::kOne
                                      : logic::Literal::kZero);
        }
        if (c.input_literal_count() == 0) {
          c.set_input(0, logic::Literal::kOne);
        }
        c.set_output(j, true);
        f.add(c);
      }
    }
    const auto synth = synthesize_wpla(f);
    const Wpla wpla(synth.stage_a, synth.stage_b, 6);
    EXPECT_TRUE(equivalent(wpla, TruthTable::from_cover(f)))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace ambit::core
