// Tests for the observability layer: the metrics registry (counters,
// gauges, log-bucketed histograms, Prometheus exposition), per-request
// phase tracing, the structured logger and its rate limiter, and the
// two small parsers the serve front door rejects bad input with —
// parse_host_port and the metrics side listener's HTTP request-line
// grammar. The exposition page is checked with the same lint helper
// serve_test.cpp applies to the page fetched over the wire.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "prometheus_lint.h"
#include "serve/metrics_http.h"
#include "serve/server.h"
#include "util/error.h"
#include "util/log.h"
#include "util/metrics.h"

namespace ambit {
namespace {

using testing_support::lint_prometheus_page;
using testing_support::prom_value;

// ---------------------------------------------------------------------------
// Counters, gauges, histograms.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeRecord) {
  if (!metrics::metrics_enabled()) {
    GTEST_SKIP() << "built with -DAMBIT_METRICS=OFF";
  }
  metrics::Counter counter;
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);

  metrics::Gauge gauge;
  gauge.set(7);
  gauge.add(3);
  gauge.sub(4);
  EXPECT_EQ(gauge.value(), 6);
  gauge.set(-2);  // gauges are signed levels, not counters
  EXPECT_EQ(gauge.value(), -2);
}

TEST(MetricsTest, RecordingCompilesOutCleanly) {
  // Whichever way AMBIT_METRICS is configured, the objects build and
  // the read side is well-defined (zeros when off).
  metrics::Counter counter;
  counter.add(5);
  metrics::Histogram histogram({1, 2, 4});
  histogram.observe(3);
  if (!metrics::metrics_enabled()) {
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(histogram.count(), 0u);
  }
}

TEST(MetricsTest, DefaultLatencyBoundsArePowersOfTwo) {
  const std::vector<std::uint64_t> bounds =
      metrics::Histogram::default_latency_bounds_us();
  ASSERT_EQ(bounds.size(), 27u);
  EXPECT_EQ(bounds.front(), 1u);
  EXPECT_EQ(bounds.back(), std::uint64_t{1} << 26);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], bounds[i - 1] * 2);
  }
}

TEST(MetricsTest, HistogramBucketsCountAndSum) {
  if (!metrics::metrics_enabled()) {
    GTEST_SKIP() << "built with -DAMBIT_METRICS=OFF";
  }
  metrics::Histogram histogram({10, 100, 1000});
  histogram.observe(0);     // first bucket (le=10 is inclusive)
  histogram.observe(10);    // still the first bucket
  histogram.observe(11);    // second
  histogram.observe(1000);  // third
  histogram.observe(5000);  // overflow
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.sum(), 0u + 10 + 11 + 1000 + 5000);
  EXPECT_EQ(histogram.max_observed(), 5000u);
  EXPECT_EQ(histogram.bucket_counts(),
            (std::vector<std::uint64_t>{2, 1, 1, 1}));
}

TEST(MetricsTest, HistogramQuantiles) {
  if (!metrics::metrics_enabled()) {
    GTEST_SKIP() << "built with -DAMBIT_METRICS=OFF";
  }
  metrics::Histogram histogram({10, 100, 1000});
  EXPECT_EQ(histogram.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) {
    histogram.observe(5);  // le=10
  }
  for (int i = 0; i < 9; ++i) {
    histogram.observe(50);  // le=100
  }
  histogram.observe(999);  // le=1000
  // Quantiles are bucket upper bounds — exactly the resolution the
  // layout promises.
  EXPECT_EQ(histogram.quantile(0.5), 10u);
  EXPECT_EQ(histogram.quantile(0.90), 10u);
  EXPECT_EQ(histogram.quantile(0.95), 100u);
  EXPECT_EQ(histogram.quantile(1.0), 1000u);
  // A sample in the overflow bucket reports the max observed value
  // instead of a meaningless +Inf.
  histogram.observe(123456);
  EXPECT_EQ(histogram.quantile(1.0), 123456u);
}

// ---------------------------------------------------------------------------
// Registry: registration contract and exposition.
// ---------------------------------------------------------------------------

TEST(MetricsTest, RegistrationIsIdempotent) {
  metrics::Registry registry;
  metrics::Counter& a =
      registry.counter("ambit_test_total", "help", {{"verb", "EVAL"}});
  metrics::Counter& b =
      registry.counter("ambit_test_total", "help", {{"verb", "EVAL"}});
  EXPECT_EQ(&a, &b);
  metrics::Counter& other =
      registry.counter("ambit_test_total", "help", {{"verb", "SIM"}});
  EXPECT_NE(&a, &other);

  EXPECT_EQ(registry.find_counter("ambit_test_total", {{"verb", "EVAL"}}), &a);
  EXPECT_EQ(registry.find_counter("ambit_test_total", {{"verb", "VERIFY"}}),
            nullptr);
  EXPECT_EQ(registry.find_counter("ambit_ghost_total"), nullptr);
  EXPECT_EQ(registry.find_gauge("ambit_ghost"), nullptr);
  EXPECT_EQ(registry.find_histogram("ambit_ghost_us"), nullptr);
}

TEST(MetricsTest, ExpositionPassesLintWithExactValues) {
  metrics::Registry registry;
  metrics::Counter& requests =
      registry.counter("ambit_test_requests_total", "served requests",
                       {{"verb", "EVAL"}});
  registry.counter("ambit_test_requests_total", "served requests",
                   {{"verb", "SIM"}});
  metrics::Gauge& active = registry.gauge("ambit_test_active", "live now");
  metrics::Histogram& latency = registry.histogram(
      "ambit_test_us", "latency", {10, 100, 1000}, {{"verb", "EVAL"}});
  requests.add(3);
  active.set(2);
  latency.observe(5);
  latency.observe(50);
  latency.observe(12345);

  const std::string page = registry.prometheus_text();
  const auto samples = lint_prometheus_page(page);
  if (!metrics::metrics_enabled()) {
    return;  // page still lints; values are all zero
  }
  EXPECT_EQ(prom_value(samples, "ambit_test_requests_total", "verb=\"EVAL\""),
            3.0);
  EXPECT_EQ(prom_value(samples, "ambit_test_requests_total", "verb=\"SIM\""),
            0.0);
  EXPECT_EQ(prom_value(samples, "ambit_test_active"), 2.0);
  EXPECT_EQ(prom_value(samples, "ambit_test_us_count", "verb=\"EVAL\""), 3.0);
  EXPECT_EQ(prom_value(samples, "ambit_test_us_sum", "verb=\"EVAL\""),
            5.0 + 50.0 + 12345.0);
  EXPECT_EQ(
      prom_value(samples, "ambit_test_us_bucket", "verb=\"EVAL\",le=\"10\""),
      1.0);
  EXPECT_EQ(
      prom_value(samples, "ambit_test_us_bucket", "verb=\"EVAL\",le=\"100\""),
      2.0);
  EXPECT_EQ(
      prom_value(samples, "ambit_test_us_bucket", "verb=\"EVAL\",le=\"1000\""),
      2.0);
  EXPECT_EQ(
      prom_value(samples, "ambit_test_us_bucket", "verb=\"EVAL\",le=\"+Inf\""),
      3.0);
}

TEST(MetricsTest, ExpositionEscapesLabelValues) {
  metrics::Registry registry;
  registry.counter("ambit_test_escapes_total", "label torture",
                   {{"path", "a\"b\\c\nd"}});
  const std::string page = registry.prometheus_text();
  // The lint checks the escaping grammar; round-tripping the value
  // back out proves the escapes decode to the original bytes.
  const auto samples = lint_prometheus_page(page);
  bool found = false;
  for (const auto& s : samples) {
    if (s.name == "ambit_test_escapes_total") {
      EXPECT_EQ(testing_support::prom_label_value(s.labels, "path"),
                "a\"b\\c\nd");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsTest, FamiliesRenderInSortedOrder) {
  metrics::Registry registry;
  registry.counter("ambit_zz_total", "last");
  registry.gauge("ambit_aa", "first");
  registry.histogram("ambit_mm_us", "middle", {1, 2});
  const std::string page = registry.prometheus_text();
  const std::size_t aa = page.find("# TYPE ambit_aa ");
  const std::size_t mm = page.find("# TYPE ambit_mm_us ");
  const std::size_t zz = page.find("# TYPE ambit_zz_total ");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(mm, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, mm);
  EXPECT_LT(mm, zz);
  lint_prometheus_page(page);
}

// ---------------------------------------------------------------------------
// Phase tracing.
// ---------------------------------------------------------------------------

TEST(MetricsTest, PhaseNamesAreStable) {
  // These strings are label values on ambit_serve_phase_us and keys in
  // slow-request log records — renaming one breaks dashboards.
  EXPECT_STREQ(metrics::phase_name(metrics::Phase::kParse), "parse");
  EXPECT_STREQ(metrics::phase_name(metrics::Phase::kCoalesceWait),
               "coalesce_wait");
  EXPECT_STREQ(metrics::phase_name(metrics::Phase::kQueueWait), "queue_wait");
  EXPECT_STREQ(metrics::phase_name(metrics::Phase::kEvaluate), "evaluate");
  EXPECT_STREQ(metrics::phase_name(metrics::Phase::kSerialize), "serialize");
}

TEST(MetricsTest, ScopedPhaseTimerWritesAmbientTrace) {
  if (!metrics::metrics_enabled()) {
    GTEST_SKIP() << "built with -DAMBIT_METRICS=OFF";
  }
  // No ambient trace: the timer is inert.
  EXPECT_EQ(metrics::current_trace(), nullptr);
  { const metrics::ScopedPhaseTimer inert(metrics::Phase::kParse); }

  metrics::PhaseTrace trace;
  {
    const metrics::TraceScope scope(&trace);
    EXPECT_EQ(metrics::current_trace(), &trace);
    {
      const metrics::ScopedPhaseTimer timer(metrics::Phase::kEvaluate);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Scopes nest: an inner nullptr scope suspends tracing.
    {
      const metrics::TraceScope inner(nullptr);
      EXPECT_EQ(metrics::current_trace(), nullptr);
      const metrics::ScopedPhaseTimer untraced(metrics::Phase::kParse);
    }
    EXPECT_EQ(metrics::current_trace(), &trace);
  }
  EXPECT_EQ(metrics::current_trace(), nullptr);
  EXPECT_GE(trace.get(metrics::Phase::kEvaluate), 1000u);  // >= 1 ms recorded
  EXPECT_EQ(trace.get(metrics::Phase::kParse), 0u);
}

// ---------------------------------------------------------------------------
// Structured logging.
// ---------------------------------------------------------------------------

/// Redirects the log sink to a fresh temp file for one test and
/// restores stderr (and the info threshold) on destruction.
class LogCapture {
 public:
  explicit LogCapture(const std::string& name)
      : path_(::testing::TempDir() + "/" + name) {
    std::remove(path_.c_str());
    EXPECT_TRUE(logs::set_file(path_));
  }
  ~LogCapture() {
    logs::set_file("");
    logs::set_threshold(logs::Level::kInfo);
  }

  std::string contents() const {
    std::ifstream in(path_);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

 private:
  std::string path_;
};

TEST(LogTest, ParseLevelRoundTrips) {
  EXPECT_EQ(logs::parse_level("debug"), logs::Level::kDebug);
  EXPECT_EQ(logs::parse_level("info"), logs::Level::kInfo);
  EXPECT_EQ(logs::parse_level("warn"), logs::Level::kWarn);
  EXPECT_EQ(logs::parse_level("error"), logs::Level::kError);
  EXPECT_EQ(logs::parse_level("off"), logs::Level::kOff);
  EXPECT_EQ(logs::parse_level("verbose"), std::nullopt);
  EXPECT_EQ(logs::parse_level(""), std::nullopt);
  EXPECT_STREQ(logs::level_name(logs::Level::kWarn), "warn");
}

TEST(LogTest, RecordsAreOneLineKeyValue) {
  LogCapture capture("log_kv.log");
  logs::info("conn.accept", {{"conn", "17"}, {"transport", "tcp"}});
  const std::string text = capture.contents();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_NE(text.find("level=info"), std::string::npos) << text;
  EXPECT_NE(text.find("event=conn.accept"), std::string::npos);
  EXPECT_NE(text.find("conn=17"), std::string::npos);
  EXPECT_NE(text.find("transport=tcp"), std::string::npos);
  EXPECT_NE(text.find("ts="), std::string::npos);
  EXPECT_NE(text.find("mono_us="), std::string::npos);
}

TEST(LogTest, ValuesWithSpacesOrQuotesAreQuoted) {
  LogCapture capture("log_quote.log");
  logs::warn("load.fail", {{"path", "/tmp/a b.pla"}, {"err", "x=\"y\""}});
  const std::string text = capture.contents();
  EXPECT_NE(text.find("path=\"/tmp/a b.pla\""), std::string::npos) << text;
  EXPECT_NE(text.find("err=\"x=\\\"y\\\"\""), std::string::npos) << text;
}

TEST(LogTest, ThresholdDropsRecordsBelowIt) {
  LogCapture capture("log_threshold.log");
  logs::set_threshold(logs::Level::kWarn);
  logs::debug("dropped.debug");
  logs::info("dropped.info");
  logs::warn("kept.warn");
  logs::error("kept.error");
  logs::set_threshold(logs::Level::kOff);
  logs::error("dropped.even.error");
  const std::string text = capture.contents();
  EXPECT_EQ(text.find("dropped."), std::string::npos) << text;
  EXPECT_NE(text.find("event=kept.warn"), std::string::npos);
  EXPECT_NE(text.find("event=kept.error"), std::string::npos);
}

TEST(LogTest, RateLimiterCountsSuppressedCallsExactly) {
  logs::RateLimiter limiter(/*min_interval_us=*/60'000'000);
  EXPECT_TRUE(limiter.allow());
  for (int i = 0; i < 25; ++i) {
    EXPECT_FALSE(limiter.allow());
  }
  EXPECT_EQ(limiter.take_suppressed(), 25u);
  EXPECT_EQ(limiter.take_suppressed(), 0u);  // drained
}

TEST(LogTest, WarnRateLimitedFoldsOverflowIntoNextRecord) {
  LogCapture capture("log_ratelimit.log");
  logs::RateLimiter limiter(/*min_interval_us=*/30'000);
  logs::warn_rate_limited(limiter, "frame.bad", {{"n", "0"}});
  for (int i = 1; i <= 7; ++i) {
    logs::warn_rate_limited(limiter, "frame.bad", {{"n", std::to_string(i)}});
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  logs::warn_rate_limited(limiter, "frame.bad", {{"n", "8"}});
  const std::string text = capture.contents();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2) << text;
  EXPECT_NE(text.find("suppressed=7"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// parse_host_port: every rejection names the offending spec.
// ---------------------------------------------------------------------------

TEST(HostPortTest, AcceptsWellFormedSpecs) {
  EXPECT_EQ(serve::parse_host_port("0.0.0.0:7878"),
            (std::pair<std::string, int>{"0.0.0.0", 7878}));
  EXPECT_EQ(serve::parse_host_port("localhost:0"),
            (std::pair<std::string, int>{"localhost", 0}));
  EXPECT_EQ(serve::parse_host_port("127.0.0.1:65535"),
            (std::pair<std::string, int>{"127.0.0.1", 65535}));
}

/// Asserts that parsing `spec` throws and that the error text carries
/// the spec itself — an operator reading the failure in a service log
/// must see WHICH --tcp/--metrics argument was wrong.
void expect_rejected_quoting_spec(const std::string& spec,
                                  const std::string& detail) {
  try {
    serve::parse_host_port(spec);
    FAIL() << "accepted '" << spec << "'";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'" + spec + "'"), std::string::npos)
        << "error for '" << spec << "' omits the spec: " << what;
    EXPECT_NE(what.find(detail), std::string::npos)
        << "error for '" << spec << "' omits '" << detail << "': " << what;
  }
}

TEST(HostPortTest, RejectionsQuoteTheOffendingSpec) {
  expect_rejected_quoting_spec("", "expected <host>:<port>");
  expect_rejected_quoting_spec("nocolon", "expected <host>:<port>");
  expect_rejected_quoting_spec(":7878", "expected <host>:<port>");
  expect_rejected_quoting_spec("host:", "expected <host>:<port>");
  expect_rejected_quoting_spec("host:abc", "is not a number");
  expect_rejected_quoting_spec("host:12x8", "is not a number");
  expect_rejected_quoting_spec("host:-1", "is not a number");
  // The overflow path must also name the port AND the spec, and must
  // trip before accumulating past what an int can hold.
  expect_rejected_quoting_spec("host:65536", "exceeds 65535");
  expect_rejected_quoting_spec("host:99999999999999999999", "exceeds 65535");
  try {
    serve::parse_host_port("host:65536");
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'65536'"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// The metrics side listener's HTTP grammar (pure functions — no
// sockets; the socket path is covered end-to-end in serve_test.cpp).
// ---------------------------------------------------------------------------

TEST(MetricsHttpTest, ParsesWellFormedRequestLines) {
  const serve::HttpRequestLine get =
      serve::parse_http_request_line("GET /metrics HTTP/1.1");
  EXPECT_EQ(get.method, "GET");
  EXPECT_EQ(get.target, "/metrics");
  EXPECT_EQ(get.version, "HTTP/1.1");
  const serve::HttpRequestLine head =
      serve::parse_http_request_line("HEAD /healthz HTTP/1.0");
  EXPECT_EQ(head.method, "HEAD");
}

/// The rejection contract mirrors parse_host_port: the offending line
/// (escaped) appears in the error text.
void expect_http_rejected(const std::string& line,
                          const std::string& quoted_as) {
  try {
    serve::parse_http_request_line(line);
    FAIL() << "accepted '" << line << "'";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad HTTP request line"), std::string::npos) << what;
    EXPECT_NE(what.find("'" + quoted_as + "'"), std::string::npos)
        << "error omits the offending line: " << what;
  }
}

TEST(MetricsHttpTest, RejectionsQuoteTheOffendingLine) {
  expect_http_rejected("", "");
  expect_http_rejected("GET", "GET");
  expect_http_rejected("GET /metrics", "GET /metrics");
  expect_http_rejected("GET /metrics HTTP/1.0 extra",
                       "GET /metrics HTTP/1.0 extra");
  expect_http_rejected("GET  HTTP/1.0", "GET  HTTP/1.0");  // empty target
  expect_http_rejected("GET /metrics FTP/1.0", "GET /metrics FTP/1.0");
  expect_http_rejected("GET /metrics HTTP/", "GET /metrics HTTP/");
  expect_http_rejected("get /metrics HTTP/1.0", "get /metrics HTTP/1.0");
  // Control bytes come back escaped, not raw, so the error is safe to
  // put on one log line.
  expect_http_rejected("GET\t/metrics", "GET\\t/metrics");
  expect_http_rejected(std::string("B\x01G", 3), "B\\x01G");
}

TEST(MetricsHttpTest, LongBadLinesAreTruncatedInErrors) {
  const std::string line(500, 'A');
  try {
    serve::parse_http_request_line(line);
    FAIL();
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_LT(what.size(), 200u) << what;
    EXPECT_NE(what.find("..."), std::string::npos) << what;
  }
}

TEST(MetricsHttpTest, ResponseRouting) {
  int renders = 0;
  const auto render = [&renders] {
    ++renders;
    return std::string("# HELP x x\n# TYPE x counter\nx 1\n");
  };
  const std::string ok =
      serve::http_response("GET /metrics HTTP/1.0\r\nHost: h\r\n\r\n", render);
  EXPECT_EQ(renders, 1);
  EXPECT_NE(ok.find("HTTP/1.0 200 OK\r\n"), std::string::npos) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(ok.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(ok.find("\r\n\r\n# HELP x x\n"), std::string::npos);
  // Content-Length matches the body exactly.
  const std::string body = ok.substr(ok.find("\r\n\r\n") + 4);
  EXPECT_NE(ok.find("Content-Length: " + std::to_string(body.size())),
            std::string::npos)
      << ok;

  // Cache-busting query strings still reach the page.
  EXPECT_NE(serve::http_response("GET /metrics?ts=1 HTTP/1.1\r\n\r\n", render)
                .find("200 OK"),
            std::string::npos);
  EXPECT_EQ(renders, 2);

  const std::string health =
      serve::http_response("GET /healthz HTTP/1.0\r\n\r\n", render);
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);
  EXPECT_EQ(renders, 2);  // /healthz never builds the page

  EXPECT_NE(serve::http_response("GET /elsewhere HTTP/1.0\r\n\r\n", render)
                .find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(serve::http_response("POST /metrics HTTP/1.0\r\n\r\n", render)
                .find("405 Method Not Allowed"),
            std::string::npos);
  const std::string bad = serve::http_response("garbage\r\n\r\n", render);
  EXPECT_NE(bad.find("400 Bad Request"), std::string::npos);
  EXPECT_NE(bad.find("bad HTTP request line"), std::string::npos) << bad;
  EXPECT_EQ(renders, 2);  // none of the failures rendered the page
}

}  // namespace
}  // namespace ambit
