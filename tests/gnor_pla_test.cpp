// Tests for the GNOR-PLA and classical-PLA cover mappers: functional
// equivalence against truth tables, phase handling, cell counting.
#include <gtest/gtest.h>

#include "core/classical_pla.h"
#include "core/gnor_pla.h"
#include "espresso/espresso.h"
#include "espresso/phase_opt.h"
#include "logic/truth_table.h"
#include "util/rng.h"

namespace ambit::core {
namespace {

using logic::Cover;
using logic::Cube;
using logic::Literal;
using logic::TruthTable;

/// Exhaustively checks a mapped PLA against the truth table of
/// `reference`, through the Evaluator batch path.
void expect_matches_cover(const Evaluator& pla, const Cover& reference) {
  const TruthTable expected = TruthTable::from_cover(reference);
  const TruthTable actual = exhaustive_truth_table(pla);
  EXPECT_EQ(expected.count_mismatches(actual), 0u);
}

Cover random_cover(ambit::Rng& rng, int ni, int no, int cubes) {
  Cover f(ni, no);
  for (int k = 0; k < cubes; ++k) {
    Cube c(ni, no);
    for (int i = 0; i < ni; ++i) {
      const auto r = rng.next_below(3);
      c.set_input(i, r == 0   ? Literal::kZero
                     : r == 1 ? Literal::kOne
                              : Literal::kDontCare);
    }
    c.set_output(static_cast<int>(rng.next_below(no)), true);
    f.add(c);
  }
  return f;
}

TEST(GnorPlaTest, ProductPlaneMappingPolarity) {
  // P = x0·x̄1 -> cell0 = invert (p-type), cell1 = pass (n-type).
  const Cover f = Cover::parse(2, 1, {"10 1"});
  const GnorPla pla = GnorPla::map_cover(f);
  EXPECT_EQ(pla.product_plane().cell(0, 0), CellConfig::kInvert);
  EXPECT_EQ(pla.product_plane().cell(0, 1), CellConfig::kPass);
  expect_matches_cover(pla, f);
}

TEST(GnorPlaTest, ProductLinesCarryProducts) {
  const Cover f = Cover::parse(3, 1, {"11- 1", "0-1 1"});
  const GnorPla pla = GnorPla::map_cover(f);
  // At x = 110 the first product fires, the second does not.
  const auto products = pla.evaluate_products({true, true, false});
  EXPECT_TRUE(products[0]);
  EXPECT_FALSE(products[1]);
}

TEST(GnorPlaTest, ExorMapsExactly) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  expect_matches_cover(GnorPla::map_cover(f), f);
}

TEST(GnorPlaTest, MultiOutputSharing) {
  const Cover f = Cover::parse(3, 2, {"11- 11", "--1 01"});
  const GnorPla pla = GnorPla::map_cover(f);
  expect_matches_cover(pla, f);
  // Shared product drives both output rows.
  EXPECT_EQ(pla.output_plane().cell(0, 0), CellConfig::kPass);
  EXPECT_EQ(pla.output_plane().cell(1, 0), CellConfig::kPass);
}

TEST(GnorPlaTest, CellCountMatchesAreaModel) {
  const Cover f = Cover::parse(4, 3, {"10-- 111", "--11 010", "0--1 001"});
  const GnorPla pla = GnorPla::map_cover(f);
  EXPECT_EQ(pla.cell_count(), (4 + 3) * 3);
  EXPECT_EQ(pla.dimensions().inputs, 4);
  EXPECT_EQ(pla.dimensions().outputs, 3);
  EXPECT_EQ(pla.dimensions().products, 3);
}

TEST(GnorPlaTest, ComplementedPhaseRecoversPositiveFunction) {
  // Implement f = x0 ∨ x1 through its complement cover f̄ = x̄0·x̄1.
  const Cover f_bar = Cover::parse(2, 1, {"00 1"});
  const GnorPla pla = GnorPla::map_cover(f_bar, {true});
  const Cover f = Cover::parse(2, 1, {"1- 1", "-1 1"});
  expect_matches_cover(pla, f);
  EXPECT_FALSE(pla.buffer_inverted(0));
}

TEST(GnorPlaTest, PhaseOptimizedCoverMapsToOriginalFunction) {
  // Nearly-full ON-set: phase opt complements the output; the mapped
  // PLA must still compute the original function.
  ambit::Rng rng(808);
  Cover f(3, 1);
  for (std::uint64_t m = 1; m < 8; ++m) {
    Cube c(3, 1);
    c.set_output(0, true);
    for (int i = 0; i < 3; ++i) {
      c.set_input(i, ((m >> i) & 1) ? Literal::kOne : Literal::kZero);
    }
    f.add(c);
  }
  const auto phased =
      espresso::optimize_output_phases(f, Cover(3, 1));
  ASSERT_TRUE(phased.complemented[0]);
  const GnorPla pla = GnorPla::map_cover(phased.cover, phased.complemented);
  expect_matches_cover(pla, f);
}

TEST(GnorPlaTest, AsciiShowsBothPlanes) {
  const Cover f = Cover::parse(2, 1, {"10 1"});
  const std::string art = GnorPla::map_cover(f).to_ascii();
  EXPECT_NE(art.find("product plane"), std::string::npos);
  EXPECT_NE(art.find("output plane"), std::string::npos);
  EXPECT_NE(art.find("-+"), std::string::npos);
}

TEST(ClassicalPlaTest, LiteralColumnsConnectComplementRail) {
  // P = x0 -> complement rail of input 0 (column 1) is connected.
  const Cover f = Cover::parse(2, 1, {"1- 1"});
  const ClassicalPla pla = ClassicalPla::map_cover(f);
  EXPECT_TRUE(pla.and_plane_connected(0, 1));
  EXPECT_FALSE(pla.and_plane_connected(0, 0));
  EXPECT_FALSE(pla.and_plane_connected(0, 2));
  expect_matches_cover(pla, f);
}

TEST(ClassicalPlaTest, ExorMapsExactly) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  expect_matches_cover(ClassicalPla::map_cover(f), f);
}

TEST(ClassicalPlaTest, CellCountUsesReplicatedColumns) {
  const Cover f = Cover::parse(4, 3, {"10-- 111", "--11 010"});
  const ClassicalPla pla = ClassicalPla::map_cover(f);
  EXPECT_EQ(pla.cell_count(), (2 * 4 + 3) * 2);
}

TEST(ClassicalPlaTest, ComplementedPhaseRecovered) {
  const Cover f_bar = Cover::parse(2, 1, {"00 1"});
  const ClassicalPla pla = ClassicalPla::map_cover(f_bar, {true});
  const Cover f = Cover::parse(2, 1, {"1- 1", "-1 1"});
  expect_matches_cover(pla, f);
}

TEST(ClassicalPlaTest, ActiveCellsCountsConnections)  {
  const Cover f = Cover::parse(2, 1, {"10 1"});
  const ClassicalPla pla = ClassicalPla::map_cover(f);
  // 2 literal connections + 1 output connection.
  EXPECT_EQ(pla.active_cells(), 3);
}

// ---------------------------------------------------------------------------
// Property sweep: random covers map equivalently on BOTH architectures,
// before and after Espresso minimization.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<int, int, int>;

class PlaMappingSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(PlaMappingSweep, BothArchitecturesMatchFunction) {
  const auto [ni, no, cubes] = GetParam();
  ambit::Rng rng(static_cast<std::uint64_t>(ni * 31 + no * 7 + cubes));
  for (int trial = 0; trial < 5; ++trial) {
    const Cover f = random_cover(rng, ni, no, cubes);
    expect_matches_cover(GnorPla::map_cover(f), f);
    expect_matches_cover(ClassicalPla::map_cover(f), f);

    const auto minimized = espresso::minimize(f);
    expect_matches_cover(GnorPla::map_cover(minimized.cover), f);
    expect_matches_cover(ClassicalPla::map_cover(minimized.cover), f);
  }
}

TEST_P(PlaMappingSweep, GnorUsesFewerCellsThanClassical) {
  const auto [ni, no, cubes] = GetParam();
  ambit::Rng rng(static_cast<std::uint64_t>(ni * 131 + no * 17 + cubes));
  const Cover f = random_cover(rng, ni, no, cubes);
  EXPECT_LT(GnorPla::map_cover(f).cell_count(),
            ClassicalPla::map_cover(f).cell_count());
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, PlaMappingSweep,
    testing::Values(SweepParam{3, 1, 5}, SweepParam{4, 2, 6},
                    SweepParam{5, 1, 8}, SweepParam{5, 4, 10},
                    SweepParam{6, 2, 12}, SweepParam{7, 3, 14},
                    SweepParam{8, 1, 16}, SweepParam{8, 5, 18}),
    [](const testing::TestParamInfo<SweepParam>& info) {
      std::string name = "i";
      name += std::to_string(std::get<0>(info.param));
      name += "_o";
      name += std::to_string(std::get<1>(info.param));
      name += "_c";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

}  // namespace
}  // namespace ambit::core
