// Adversarial-peer tests for the socket serve paths, parameterized
// over both io models (threads and epoll): trickled one-byte-at-a-time
// frames (request lines and EVALB/SIMB headers split across reads),
// slow readers that force the server to hold a multi-megabyte response
// under write backpressure, slow-loris peers that must be idle-dropped
// at the configured deadline without pinning healthy connections, and
// SHUTDOWN completing promptly under continuous connect pressure (the
// accept loop's slot wait must observe the latch via the self-pipe,
// not a poll timeout that never fires while clients keep arriving).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "logic/pla_io.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/metrics.h"

#ifndef _WIN32

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ambit::serve {
namespace {

using logic::Cover;
using logic::PatternBatch;

/// Writes a small 3-input/2-output cover to a temp .pla file and
/// returns its path.
std::string write_sample_pla(const std::string& filename) {
  const Cover f = Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"});
  const std::string path = testing::TempDir() + "/" + filename;
  logic::write_pla_file(path, logic::make_pla(f, "sample"));
  return path;
}

/// Raw little-endian bytes of a batch's packed lanes — the EVALB/SIMB
/// wire payload.
std::string frame_payload(const PatternBatch& batch) {
  std::vector<std::uint64_t> words(batch.total_words());
  batch.store_words(words.data(), words.size());
  return std::string(reinterpret_cast<const char*>(words.data()),
                     words.size() * sizeof(std::uint64_t));
}

/// Sends every byte of `wire`, optionally sleeping between bytes so
/// consecutive bytes land in separate reads on the server side.
void send_bytes(int fd, const std::string& wire,
                std::chrono::microseconds pause = {}) {
  for (const char byte : wire) {
    for (;;) {
      const ssize_t n = ::send(fd, &byte, 1, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      ASSERT_EQ(n, 1);
      break;
    }
    if (pause.count() > 0) {
      std::this_thread::sleep_for(pause);
    }
  }
}

/// Reads the connection to EOF and returns everything received.
std::string drain(int fd) {
  std::string buffer;
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return buffer;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

/// A Unix-socket server running on its own thread, shut down (if the
/// test has not already done so) on destruction.
class UnixServer {
 public:
  UnixServer(Session& session, const ServerOptions& options,
             const std::string& tag)
      : server_(session, options),
        socket_path_(testing::TempDir() + "/ambit_slow_" + tag + ".sock") {
    thread_ = std::thread([this] { server_.serve_unix(socket_path_); });
  }
  ~UnixServer() {
    if (thread_.joinable()) {
      shutdown();
    }
  }

  const std::string& socket_path() const { return socket_path_; }

  int connect() const { return connect_with_retry(socket_path_); }

  void shutdown() {
    const int fd = connect();
    if (fd >= 0) {
      socket_transact(fd, "SHUTDOWN\n", 1);
      ::close(fd);
    }
    thread_.join();
  }

  /// Joins the serve thread directly — for tests that already sent
  /// SHUTDOWN on their own connection (a fresh connect against the
  /// dying listener would only add retry latency to the measurement).
  void join() { thread_.join(); }

 private:
  Server server_;
  std::string socket_path_;
  std::thread thread_;
};

class SlowPeerTest : public ::testing::TestWithParam<IoModel> {
 protected:
  ServerOptions opts() const {
    ServerOptions options;
    options.io_model = GetParam();
    return options;
  }
};

std::string io_model_param_name(
    const ::testing::TestParamInfo<IoModel>& info) {
  return io_model_name(info.param);
}

INSTANTIATE_TEST_SUITE_P(IoModels, SlowPeerTest,
                         ::testing::Values(IoModel::kThreads, IoModel::kEpoll),
                         io_model_param_name);

// ---------------------------------------------------------------------------
// Trickled frames: every frame boundary lands mid-read.
// ---------------------------------------------------------------------------

TEST_P(SlowPeerTest, TrickledBytesProduceSameResponsesAsOneWrite) {
  // One byte per send, with a pause so the server really sees the
  // request line, the EVALB/SIMB headers, AND their binary payloads
  // split across arbitrary read boundaries — then the trickled
  // response stream must be byte-identical to a single-write replay of
  // the same wire bytes. (LOAD happens on a separate control
  // connection: its response embeds a wall-clock load time, the one
  // non-deterministic response line in the protocol.)
  Session session(2);
  UnixServer server(session, opts(),
                    std::string("trickle_") + io_model_name(GetParam()));
  const std::string path = write_sample_pla("slow_trickle.pla");
  const int ctl = server.connect();
  ASSERT_GE(ctl, 0);
  ASSERT_EQ(socket_transact(ctl, "LOAD s " + path + "\n", 1).size(), 1u);
  ::close(ctl);

  PatternBatch inputs = PatternBatch::exhaustive(3);
  std::ostringstream wire;
  wire << "EVAL s 7 0\n"
       << "EVALB s " << inputs.num_patterns() << " " << inputs.total_words()
       << "\n"
       << frame_payload(inputs) << "SIMB s " << inputs.num_patterns() << " "
       << inputs.total_words() << "\n"
       << frame_payload(inputs) << "VERIFY s\nQUIT\n";

  const int fast = server.connect();
  ASSERT_GE(fast, 0);
  send_bytes(fast, wire.str());
  ::shutdown(fast, SHUT_WR);
  const std::string expected = drain(fast);
  ::close(fast);
  ASSERT_NE(expected.find("OK EVALB "), std::string::npos);
  ASSERT_NE(expected.find("OK SIMB "), std::string::npos);
  ASSERT_NE(expected.find("OK bye"), std::string::npos);

  const int slow = server.connect();
  ASSERT_GE(slow, 0);
  send_bytes(slow, wire.str(), std::chrono::microseconds(300));
  ::shutdown(slow, SHUT_WR);
  const std::string trickled = drain(slow);
  ::close(slow);
  EXPECT_EQ(trickled, expected);
}

// ---------------------------------------------------------------------------
// Slow reader: the server owes megabytes while the peer sips.
// ---------------------------------------------------------------------------

TEST_P(SlowPeerTest, SlowReaderReceivesFullBackpressuredResponse) {
  // A 100k-pattern SIMB response (~2.4 MB: output lanes plus the 3*np
  // delay doubles) far exceeds any default socket buffer, so the
  // server must hold the overflow — the epoll path in its outbox with
  // EPOLLOUT-driven flushing, the threads path blocked in send — while
  // the client reads 4 KB at a time with pauses. The frame must arrive
  // complete and the connection must still serve a follow-up request,
  // proving backpressure neither truncated nor wedged the stream.
  Session session(2);
  UnixServer server(session, opts(),
                    std::string("slowread_") + io_model_name(GetParam()));
  const std::string path = write_sample_pla("slow_reader.pla");

  constexpr std::uint64_t kPatterns = 100000;
  PatternBatch inputs(3, kPatterns);
  for (std::uint64_t p = 0; p < kPatterns; ++p) {
    inputs.set(p, 0, (p & 1) != 0);
    inputs.set(p, 1, (p & 2) != 0);
    inputs.set(p, 2, (p & 4) != 0);
  }
  std::ostringstream wire;
  wire << "LOAD s " << path << "\nSIMB s " << kPatterns << " "
       << inputs.total_words() << "\n"
       << frame_payload(inputs) << "EVAL s 7 0\nQUIT\n";

  const int fd = server.connect();
  ASSERT_GE(fd, 0);
  const std::string request = wire.str();
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;
    }
    response.append(chunk, static_cast<std::size_t>(n));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  ::close(fd);

  // First line: "OK loaded ...". Second: the SIMB frame header.
  const std::size_t load_end = response.find('\n');
  ASSERT_NE(load_end, std::string::npos);
  const std::string after_load = response.substr(load_end + 1);
  const std::size_t header_end = after_load.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  std::istringstream header(after_load.substr(0, header_end));
  std::string ok;
  std::string verb;
  std::uint64_t np = 0;
  std::uint64_t nw = 0;
  header >> ok >> verb >> np >> nw;
  EXPECT_EQ(ok, "OK");
  EXPECT_EQ(verb, "SIMB");
  EXPECT_EQ(np, kPatterns);
  std::vector<std::uint64_t> words;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_simb_response(after_load, kPatterns, nw, words, consumed));
  // Then the pipelined EVAL response and the QUIT ack, intact.
  const std::string tail = after_load.substr(consumed);
  EXPECT_EQ(tail.compare(0, 3, "OK "), 0);
  EXPECT_NE(tail.find("OK bye"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Slow loris: a silent (or byte-dribbling-then-silent) peer is dropped
// at the idle deadline and never pins healthy traffic.
// ---------------------------------------------------------------------------

TEST_P(SlowPeerTest, SlowLorisIsIdleDroppedWithoutPinningOthers) {
  Session session(2);
  metrics::Registry registry;
  ServerOptions options = opts();
  options.idle_timeout_secs = 1;
  options.registry = &registry;
  UnixServer server(session, options,
                    std::string("loris_") + io_model_name(GetParam()));

  // The loris: half a request line, then silence.
  const auto start = std::chrono::steady_clock::now();
  const int loris = server.connect();
  ASSERT_GE(loris, 0);
  send_bytes(loris, "EVA");

  // A healthy connection opened AFTER the loris completes a full
  // session while the loris is still idling toward its deadline.
  const std::string path = write_sample_pla("slow_loris.pla");
  const int healthy = server.connect();
  ASSERT_GE(healthy, 0);
  const auto lines = socket_transact(
      healthy, "LOAD s " + path + "\nEVAL s 7 0\nQUIT\n", 3);
  ::close(healthy);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "OK bye");
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(1));

  // The loris is dropped at the deadline: EOF, and its half-line is
  // NOT served (an idle drop discards the residual — only a clean
  // peer-initiated EOF serves one).
  const std::string leftovers = drain(loris);
  ::close(loris);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(leftovers.empty()) << "idle drop served residual: " << leftovers;
  EXPECT_GE(elapsed, std::chrono::milliseconds(900));
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  server.shutdown();
  if (metrics::metrics_enabled()) {
    const metrics::Counter* idle = registry.find_counter(
        "ambit_serve_connections_dropped_total", {{"reason", "idle"}});
    ASSERT_NE(idle, nullptr);
    EXPECT_EQ(idle->value(), 1u);
  }
}

// ---------------------------------------------------------------------------
// SHUTDOWN under continuous connect pressure.
// ---------------------------------------------------------------------------

TEST_P(SlowPeerTest, ShutdownCompletesWithinOneSecondUnderConnectPressure) {
  // max_connections=1: one held slot puts the threads-path accept loop
  // into the registry slot wait, and connect pressure keeps its poll
  // permanently readable — the regression this pins is SHUTDOWN having
  // no way to interrupt that state short of a timeout that never
  // fires. The self-pipe wakeup (threads) and the drain path (epoll)
  // must both finish serve_listener within one second of the SHUTDOWN
  // response.
  Session session(1);
  ServerOptions options = opts();
  options.max_connections = 1;
  UnixServer server(session, options,
                    std::string("pressure_") + io_model_name(GetParam()));

  // Occupy the only slot first, so pressure connections pile up behind
  // it in the accept queue / slot wait.
  const int holder = server.connect();
  ASSERT_GE(holder, 0);

  std::atomic<bool> stop{false};
  std::vector<std::thread> pressure;
  for (int i = 0; i < 3; ++i) {
    pressure.emplace_back([&] {
      while (!stop.load()) {
        const int fd = connect_with_retry(server.socket_path(),
                                          /*attempts=*/1);
        if (fd >= 0) {
          ::close(fd);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  // Let the pressure build while the slot is held.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto lines = socket_transact(holder, "SHUTDOWN\n", 1);
  ASSERT_EQ(lines.size(), 1u);
  const auto acked = std::chrono::steady_clock::now();
  ::close(holder);
  server.join();  // SHUTDOWN already sent on the holder connection
  const auto elapsed = std::chrono::steady_clock::now() - acked;
  stop.store(true);
  for (std::thread& t : pressure) {
    t.join();
  }
  EXPECT_LT(elapsed, std::chrono::seconds(1))
      << "serve_listener took "
      << std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count()
      << " ms to exit after SHUTDOWN was acknowledged";
}

}  // namespace
}  // namespace ambit::serve

#endif  // !_WIN32
