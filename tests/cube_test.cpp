// Tests for the positional-cube algebra: encoding, intersection,
// containment, distance, consensus, cofactor, minterm coverage.
#include <gtest/gtest.h>

#include "logic/cube.h"
#include "util/error.h"

namespace ambit::logic {
namespace {

TEST(CubeTest, FreshCubeIsDontCareInputsNoOutputs) {
  Cube c(3, 2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.input(i), Literal::kDontCare);
  }
  EXPECT_TRUE(c.output_empty());
  EXPECT_TRUE(c.empty());
}

TEST(CubeTest, UniverseAssertsEverything) {
  const Cube u = Cube::universe(4, 3);
  EXPECT_FALSE(u.empty());
  EXPECT_EQ(u.input_literal_count(), 0);
  EXPECT_EQ(u.output_count(), 3);
}

TEST(CubeTest, ParseRoundTripsToString) {
  const Cube c = Cube::parse("10-1", "01");
  EXPECT_EQ(c.to_string(), "10-1 01");
  EXPECT_EQ(c.input(0), Literal::kOne);
  EXPECT_EQ(c.input(1), Literal::kZero);
  EXPECT_EQ(c.input(2), Literal::kDontCare);
  EXPECT_EQ(c.input(3), Literal::kOne);
  EXPECT_FALSE(c.output(0));
  EXPECT_TRUE(c.output(1));
}

TEST(CubeTest, ParseRejectsBadCharacters) {
  EXPECT_THROW(Cube::parse("10x", "1"), Error);
  EXPECT_THROW(Cube::parse("10", "z"), Error);
}

TEST(CubeTest, SetInputUpdatesLiteralCount) {
  Cube c(5, 1);
  c.set_output(0, true);
  EXPECT_EQ(c.input_literal_count(), 0);
  c.set_input(1, Literal::kZero);
  c.set_input(4, Literal::kOne);
  EXPECT_EQ(c.input_literal_count(), 2);
  c.set_input(1, Literal::kDontCare);
  EXPECT_EQ(c.input_literal_count(), 1);
}

TEST(CubeTest, EmptyInputPartDetected) {
  Cube c(2, 1);
  c.set_output(0, true);
  EXPECT_FALSE(c.input_empty());
  c.set_input(0, Literal::kEmpty);
  EXPECT_TRUE(c.input_empty());
  EXPECT_TRUE(c.empty());
}

TEST(CubeTest, DistanceCountsConflictingParts) {
  const Cube a = Cube::parse("101-", "1");
  const Cube b = Cube::parse("011-", "1");
  // Conflicts at inputs 0 and 1; outputs meet.
  EXPECT_EQ(a.distance(b), 2);
  const Cube c = Cube::parse("1---", "1");
  EXPECT_EQ(a.distance(c), 0);
  EXPECT_TRUE(a.intersects(c));
}

TEST(CubeTest, DistanceCountsOutputPartOnce) {
  const Cube a = Cube::parse("1-", "10");
  const Cube b = Cube::parse("1-", "01");
  EXPECT_EQ(a.distance(b), 1);
  const Cube c = Cube::parse("0-", "01");
  EXPECT_EQ(a.distance(c), 2);
}

TEST(CubeTest, IntersectIsBitwiseAnd) {
  const Cube a = Cube::parse("1--", "11");
  const Cube b = Cube::parse("-0-", "10");
  const Cube x = a.intersect(b);
  EXPECT_EQ(x.input(0), Literal::kOne);
  EXPECT_EQ(x.input(1), Literal::kZero);
  EXPECT_EQ(x.input(2), Literal::kDontCare);
  EXPECT_TRUE(x.output(0));
  EXPECT_FALSE(x.output(1));
}

TEST(CubeTest, ContainmentIsBitwiseSuperset) {
  const Cube big = Cube::parse("1--", "11");
  const Cube small = Cube::parse("10-", "01");
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(CubeTest, InputContainsIgnoresOutputs) {
  const Cube a = Cube::parse("1--", "10");
  const Cube b = Cube::parse("10-", "01");
  EXPECT_TRUE(a.input_contains(b));
  EXPECT_FALSE(a.contains(b));
}

TEST(CubeTest, SupercubeIsBitwiseOr) {
  const Cube a = Cube::parse("10-", "10");
  const Cube b = Cube::parse("11-", "01");
  const Cube s = a.supercube(b);
  EXPECT_EQ(s.input(0), Literal::kOne);
  EXPECT_EQ(s.input(1), Literal::kDontCare);
  EXPECT_EQ(s.input(2), Literal::kDontCare);
  EXPECT_TRUE(s.output(0));
  EXPECT_TRUE(s.output(1));
}

TEST(CubeTest, ConsensusAtDistanceOneSpansConflict) {
  // x·y + x̄·z have consensus y·z at the x conflict.
  const Cube a = Cube::parse("11-", "1");
  const Cube b = Cube::parse("0-1", "1");
  const Cube c = a.consensus(b);
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.input(0), Literal::kDontCare);
  EXPECT_EQ(c.input(1), Literal::kOne);
  EXPECT_EQ(c.input(2), Literal::kOne);
}

TEST(CubeTest, ConsensusAtDistanceTwoIsEmpty) {
  const Cube a = Cube::parse("11", "1");
  const Cube b = Cube::parse("00", "1");
  EXPECT_TRUE(a.consensus(b).empty());
}

TEST(CubeTest, ConsensusOnOutputPartUnionsOutputs) {
  const Cube a = Cube::parse("1-", "10");
  const Cube b = Cube::parse("1-", "01");
  const Cube c = a.consensus(b);
  EXPECT_FALSE(c.empty());
  EXPECT_TRUE(c.output(0));
  EXPECT_TRUE(c.output(1));
  EXPECT_EQ(c.input(0), Literal::kOne);
}

TEST(CubeTest, CofactorAgainstLiteralCube) {
  // (x0 x̄1) cofactor (x0) = x̄1.
  const Cube a = Cube::parse("10-", "1");
  Cube p = Cube::universe(3, 1);
  p.set_input(0, Literal::kOne);
  const Cube cf = a.cofactor(p);
  EXPECT_EQ(cf.input(0), Literal::kDontCare);
  EXPECT_EQ(cf.input(1), Literal::kZero);
  EXPECT_EQ(cf.input(2), Literal::kDontCare);
}

TEST(CubeTest, CoversMintermRespectsLiterals) {
  const Cube c = Cube::parse("10-", "1");
  // minterm bits: bit0=x0, bit1=x1, bit2=x2.
  EXPECT_TRUE(c.covers_minterm(0b001, 0));   // x0=1, x1=0, x2=0
  EXPECT_TRUE(c.covers_minterm(0b101, 0));   // x2 free
  EXPECT_FALSE(c.covers_minterm(0b011, 0));  // x1 must be 0
  EXPECT_FALSE(c.covers_minterm(0b000, 0));  // x0 must be 1
}

TEST(CubeTest, CoversMintermFalseForUnassertedOutput) {
  const Cube c = Cube::parse("1-", "01");
  EXPECT_FALSE(c.covers_minterm(0b01, 0));
  EXPECT_TRUE(c.covers_minterm(0b01, 1));
}

TEST(CubeTest, EqualityAndOrdering) {
  const Cube a = Cube::parse("10", "1");
  const Cube b = Cube::parse("10", "1");
  const Cube c = Cube::parse("01", "1");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(Cube::lexicographic_less(a, c) || Cube::lexicographic_less(c, a));
}

TEST(CubeTest, WideCubesSpanMultipleWords) {
  // 40 inputs -> 80 input bits + outputs straddle word boundaries.
  Cube c(40, 8);
  c.set_output(5, true);
  c.set_input(31, Literal::kZero);
  c.set_input(32, Literal::kOne);
  c.set_input(39, Literal::kZero);
  EXPECT_EQ(c.input(31), Literal::kZero);
  EXPECT_EQ(c.input(32), Literal::kOne);
  EXPECT_EQ(c.input(39), Literal::kZero);
  EXPECT_TRUE(c.output(5));
  EXPECT_FALSE(c.output(4));
  EXPECT_EQ(c.input_literal_count(), 3);

  Cube d(40, 8);
  d.set_output(5, true);
  d.set_input(31, Literal::kOne);
  EXPECT_EQ(c.distance(d), 1);
  d.set_input(39, Literal::kOne);
  EXPECT_EQ(c.distance(d), 2);
}

TEST(CubeTest, ShapeMismatchRejected) {
  const Cube a = Cube::parse("10", "1");
  const Cube b = Cube::parse("101", "1");
  EXPECT_THROW(a.distance(b), Error);
  EXPECT_THROW(a.contains(b), Error);
}

}  // namespace
}  // namespace ambit::logic
