// Property-based suites: algebraic laws of the cube/cover algebra, the
// mapping inverse of the GNOR PLA, and relational invariants of the
// crossbar — each checked over randomized TEST_P sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "core/crossbar.h"
#include "core/fabric.h"
#include "core/gnor_pla.h"
#include "core/wpla.h"
#include "espresso/unate.h"
#include "logic/pattern_batch.h"
#include "logic/truth_table.h"
#include "simulate/sim_evaluator.h"
#include "tech/technology.h"
#include "util/rng.h"

namespace ambit {
namespace {

using logic::Cover;
using logic::Cube;
using logic::Literal;
using logic::TruthTable;

Cube random_cube(Rng& rng, int ni, int no) {
  Cube c(ni, no);
  for (int i = 0; i < ni; ++i) {
    const auto r = rng.next_below(4);
    c.set_input(i, r == 0   ? Literal::kZero
                   : r == 1 ? Literal::kOne
                            : Literal::kDontCare);
  }
  c.set_output(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(no))),
               true);
  for (int j = 0; j < no; ++j) {
    if (rng.next_bool(0.3)) {
      c.set_output(j, true);
    }
  }
  return c;
}

class CubeAlgebraLaws : public testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 7919 + 13};
};

TEST_P(CubeAlgebraLaws, IntersectionCommutativeAssociativeIdempotent) {
  for (int t = 0; t < 40; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(10));
    const Cube a = random_cube(rng_, ni, 2);
    const Cube b = random_cube(rng_, ni, 2);
    const Cube c = random_cube(rng_, ni, 2);
    EXPECT_EQ(a.intersect(b), b.intersect(a));
    EXPECT_EQ(a.intersect(b).intersect(c), a.intersect(b.intersect(c)));
    EXPECT_EQ(a.intersect(a), a);
  }
}

TEST_P(CubeAlgebraLaws, SupercubeCommutativeAbsorbing) {
  for (int t = 0; t < 40; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(10));
    const Cube a = random_cube(rng_, ni, 2);
    const Cube b = random_cube(rng_, ni, 2);
    EXPECT_EQ(a.supercube(b), b.supercube(a));
    EXPECT_TRUE(a.supercube(b).contains(a));
    EXPECT_TRUE(a.supercube(b).contains(b));
    EXPECT_EQ(a.supercube(a), a);
  }
}

TEST_P(CubeAlgebraLaws, ContainmentOrderRelation) {
  for (int t = 0; t < 40; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(10));
    const Cube a = random_cube(rng_, ni, 2);
    const Cube b = random_cube(rng_, ni, 2);
    const Cube meet = a.intersect(b);
    // meet <= a, meet <= b; and if a <= b and b <= a then a == b.
    EXPECT_TRUE(a.contains(meet));
    EXPECT_TRUE(b.contains(meet));
    if (a.contains(b) && b.contains(a)) {
      EXPECT_EQ(a, b);
    }
    // Containment implies intersection everywhere (distance 0) unless
    // the contained cube is empty.
    if (a.contains(b) && !b.empty()) {
      EXPECT_EQ(a.distance(b), 0);
    }
  }
}

TEST_P(CubeAlgebraLaws, DistanceSymmetricAndZeroIffIntersect) {
  for (int t = 0; t < 40; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(10));
    const Cube a = random_cube(rng_, ni, 2);
    const Cube b = random_cube(rng_, ni, 2);
    EXPECT_EQ(a.distance(b), b.distance(a));
    EXPECT_EQ(a.distance(b) == 0, !a.intersect(b).empty());
  }
}

TEST_P(CubeAlgebraLaws, CofactorAgainstUniverseIsIdentity) {
  for (int t = 0; t < 40; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(10));
    const Cube a = random_cube(rng_, ni, 2);
    EXPECT_EQ(a.cofactor(Cube::universe(ni, 2)), a);
  }
}

TEST_P(CubeAlgebraLaws, ConsensusIsCoveredByUnionSemantically) {
  for (int t = 0; t < 25; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(6));
    Cube a = random_cube(rng_, ni, 1);
    Cube b = random_cube(rng_, ni, 1);
    a.set_output(0, true);
    b.set_output(0, true);
    const Cube cons = a.consensus(b);
    if (cons.empty()) {
      continue;
    }
    Cover pair(ni, 1);
    pair.add(a);
    pair.add(b);
    Cover cons_cover(ni, 1);
    cons_cover.add(cons);
    EXPECT_TRUE(logic::contained_in(cons_cover, pair))
        << "consensus escapes a ∪ b";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeAlgebraLaws, testing::Values(1, 2, 3, 4),
                         [](const testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

class CoverSemanticsLaws : public testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 104729 + 7};

  Cover random_cover(int ni, int cubes) {
    Cover f(ni, 1);
    for (int k = 0; k < cubes; ++k) {
      Cube c = random_cube(rng_, ni, 1);
      c.set_output(0, true);
      f.add(c);
    }
    return f;
  }
};

TEST_P(CoverSemanticsLaws, DeMorganOverUnion) {
  for (int t = 0; t < 10; ++t) {
    const int ni = 3 + static_cast<int>(rng_.next_below(4));
    const Cover f = random_cover(ni, 5);
    const Cover g = random_cover(ni, 5);
    Cover fg = f;
    fg.append(g);
    // (f ∪ g)' == f' ∩ g' — check via truth tables.
    const TruthTable lhs =
        TruthTable::from_cover(espresso::complement(fg));
    const TruthTable tf =
        TruthTable::from_cover(espresso::complement(f));
    const TruthTable tg =
        TruthTable::from_cover(espresso::complement(g));
    for (std::uint64_t m = 0; m < lhs.num_minterms(); ++m) {
      EXPECT_EQ(lhs.get(m, 0), tf.get(m, 0) && tg.get(m, 0));
    }
  }
}

TEST_P(CoverSemanticsLaws, CofactorShannonDecomposition) {
  // f == x·f_x + x̄·f_x̄ for every variable, semantically.
  for (int t = 0; t < 10; ++t) {
    const int ni = 3 + static_cast<int>(rng_.next_below(4));
    const Cover f = random_cover(ni, 6);
    for (int x = 0; x < ni; ++x) {
      Cube hi = Cube::universe(ni, 1);
      hi.set_input(x, Literal::kOne);
      Cube lo = Cube::universe(ni, 1);
      lo.set_input(x, Literal::kZero);
      Cover fx = f.cofactor(hi);
      fx.and_literal(x, true);
      Cover fnx = f.cofactor(lo);
      fnx.and_literal(x, false);
      fx.append(fnx);
      EXPECT_TRUE(logic::equivalent(fx, f)) << "var " << x;
    }
  }
}

TEST_P(CoverSemanticsLaws, SingleCubeContainmentPreservesFunction) {
  for (int t = 0; t < 10; ++t) {
    const int ni = 3 + static_cast<int>(rng_.next_below(4));
    Cover f = random_cover(ni, 8);
    const Cover before = f;
    f.remove_single_cube_contained();
    EXPECT_TRUE(logic::equivalent(f, before));
    f.sort_and_dedup();
    EXPECT_TRUE(logic::equivalent(f, before));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverSemanticsLaws, testing::Values(1, 2, 3),
                         [](const testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(GnorMappingInverse, PlaneConfigRecoversCover) {
  // map_cover is invertible: reading the plane-1 polarities back gives
  // exactly the cover's literals.
  Rng rng(99);
  for (int t = 0; t < 20; ++t) {
    const int ni = 3 + static_cast<int>(rng.next_below(6));
    Cover f(ni, 2);
    for (int k = 0; k < 6; ++k) {
      Cube c = random_cube(rng, ni, 2);
      f.add(c);
    }
    const auto pla = core::GnorPla::map_cover(f);
    for (int k = 0; k < static_cast<int>(f.size()); ++k) {
      for (int i = 0; i < ni; ++i) {
        const auto cell = pla.product_plane().cell(k, i);
        switch (f[static_cast<std::size_t>(k)].input(i)) {
          case Literal::kOne:
            EXPECT_EQ(cell, core::CellConfig::kInvert);
            break;
          case Literal::kZero:
            EXPECT_EQ(cell, core::CellConfig::kPass);
            break;
          default:
            EXPECT_EQ(cell, core::CellConfig::kOff);
            break;
        }
      }
      for (int j = 0; j < 2; ++j) {
        EXPECT_EQ(pla.output_plane().cell(j, k) == core::CellConfig::kPass,
                  f[static_cast<std::size_t>(k)].output(j));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Evaluator law: evaluate_batch ≡ scalar evaluate, pattern for pattern,
// for every circuit type — including batch sizes that do not fill a
// whole 64-bit word.
// ---------------------------------------------------------------------------

using logic::PatternBatch;

/// Draws `count` random patterns and checks the batch path against the
/// scalar path bit-for-bit on the given evaluator.
void expect_batch_matches_scalar(const Evaluator& e, Rng& rng,
                                 std::uint64_t count) {
  PatternBatch batch(e.num_inputs(), count);
  for (std::uint64_t p = 0; p < count; ++p) {
    for (int i = 0; i < e.num_inputs(); ++i) {
      batch.set(p, i, rng.next_bool());
    }
  }
  const PatternBatch out = e.evaluate_batch(batch);
  ASSERT_EQ(out.num_signals(), e.num_outputs());
  ASSERT_EQ(out.num_patterns(), count);
  for (std::uint64_t p = 0; p < count; ++p) {
    const std::vector<bool> scalar = e.evaluate(batch.pattern(p));
    ASSERT_EQ(scalar, out.pattern(p)) << "pattern " << p;
  }
  // Tail padding must stay zero after the kernel's NOR complements.
  for (int j = 0; j < out.num_signals(); ++j) {
    ASSERT_EQ(out.lane(j)[out.words_per_lane() - 1] & ~out.tail_mask(), 0u)
        << "lane " << j << " leaked into the tail";
  }
}

class BatchScalarEquivalence : public testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<std::uint64_t>(GetParam()) * 6151 + 3};

  // Deliberately straddles word boundaries: sub-word, exact word, and
  // word+tail batch sizes.
  static constexpr std::uint64_t kBatchSizes[] = {1, 63, 64, 65, 257};
};

TEST_P(BatchScalarEquivalence, GnorPla) {
  for (int t = 0; t < 8; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(8));
    Cover f(ni, 3);
    for (int k = 0; k < 2 + static_cast<int>(rng_.next_below(8)); ++k) {
      f.add(random_cube(rng_, ni, 3));
    }
    const auto pla = core::GnorPla::map_cover(f);
    for (const std::uint64_t count : kBatchSizes) {
      expect_batch_matches_scalar(pla, rng_, count);
    }
  }
}

TEST_P(BatchScalarEquivalence, Wpla) {
  for (int t = 0; t < 6; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(6));
    const int k = 1 + static_cast<int>(rng_.next_below(2));
    Cover stage_a(ni, k);
    for (int c = 0; c < 3; ++c) {
      stage_a.add(random_cube(rng_, ni, k));
    }
    Cover stage_b(ni + k, 2);
    for (int c = 0; c < 4; ++c) {
      stage_b.add(random_cube(rng_, ni + k, 2));
    }
    const core::Wpla wpla(stage_a, stage_b, ni);
    for (const std::uint64_t count : kBatchSizes) {
      expect_batch_matches_scalar(wpla, rng_, count);
    }
  }
}

TEST_P(BatchScalarEquivalence, SimEvaluator) {
  // The transistor-level simulator obeys the same Evaluator law as the
  // logic-level models: batch == scalar, pattern for pattern, across
  // word-straddling batch sizes — and both sides of the law are full
  // switch-level settles, so this doubles as a reset-state soundness
  // sweep (every pattern must be independent of the ones before it).
  for (int t = 0; t < 3; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(4));
    Cover f(ni, 2);
    for (int k = 0; k < 2 + static_cast<int>(rng_.next_below(4)); ++k) {
      f.add(random_cube(rng_, ni, 2));
    }
    const simulate::SimEvaluator sim_eval(core::GnorPla::map_cover(f),
                                          tech::default_cnfet_electrical());
    for (const std::uint64_t count : kBatchSizes) {
      expect_batch_matches_scalar(sim_eval, rng_, count);
    }
  }
}

TEST(SimulatorCrossValidation, SimulatorMatchesEveryFunctionalModel) {
  // The strongest oracle chain the repo has: for randomized covers the
  // switch-level SimEvaluator, the mapped GnorPla and the classical
  // baseline derived from the same cover must agree exhaustively.
  Rng rng(20260730);
  for (int t = 0; t < 4; ++t) {
    const int ni = 3 + static_cast<int>(rng.next_below(3));
    Cover f(ni, 2);
    for (int k = 0; k < 3 + static_cast<int>(rng.next_below(5)); ++k) {
      f.add(random_cube(rng, ni, 2));
    }
    const auto pla = core::GnorPla::map_cover(f);
    const simulate::SimEvaluator sim_eval(pla,
                                          tech::default_cnfet_electrical());
    EXPECT_TRUE(equivalent(sim_eval, pla)) << "trial " << t;
  }
}

TEST_P(BatchScalarEquivalence, Fabric) {
  for (int t = 0; t < 6; ++t) {
    const int ni = 2 + static_cast<int>(rng_.next_below(5));
    Cover f(ni, 2);
    for (int c = 0; c < 4; ++c) {
      f.add(random_cube(rng_, ni, 2));
    }
    const auto pla = core::GnorPla::map_cover(f);
    core::Fabric fabric(ni);
    // Plane columns wider than the bus leave undriven (grounded)
    // columns; feed-through on the first stage widens the bus.
    core::GnorPlane wide(pla.num_products(), ni + 1);
    for (int r = 0; r < pla.num_products(); ++r) {
      for (int c = 0; c < ni; ++c) {
        wide.set_cell(r, c, pla.product_plane().cell(r, c));
      }
    }
    fabric.add_stage(core::FabricStage(
        core::Fabric::identity_routing(ni, ni + 1), std::move(wide),
        /*feed=*/true));
    fabric.add_stage(core::FabricStage(
        core::Fabric::identity_routing(fabric.bus_width(),
                                       fabric.bus_width()),
        core::GnorPlane(2, fabric.bus_width())));
    for (const std::uint64_t count : kBatchSizes) {
      expect_batch_matches_scalar(fabric, rng_, count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchScalarEquivalence,
                         testing::Values(1, 2, 3),
                         [](const testing::TestParamInfo<int>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(CrossbarRelations, ConnectivityIsEquivalenceRelation) {
  Rng rng(321);
  for (int t = 0; t < 10; ++t) {
    core::Crossbar xb(5, 5);
    for (int h = 0; h < 5; ++h) {
      for (int v = 0; v < 5; ++v) {
        xb.set_switch(h, v, rng.next_bool(0.2));
      }
    }
    const auto labels = xb.components();
    for (int a = 0; a < xb.num_wires(); ++a) {
      EXPECT_TRUE(xb.connected(a, a));  // reflexive
      for (int b = 0; b < xb.num_wires(); ++b) {
        EXPECT_EQ(xb.connected(a, b), xb.connected(b, a));  // symmetric
        // Components agree with pairwise connectivity.
        EXPECT_EQ(labels[static_cast<std::size_t>(a)] ==
                      labels[static_cast<std::size_t>(b)],
                  xb.connected(a, b));
      }
    }
  }
}

TEST(CrossbarRelations, PathLengthTriangleInequality) {
  Rng rng(654);
  core::Crossbar xb(6, 6);
  for (int h = 0; h < 6; ++h) {
    for (int v = 0; v < 6; ++v) {
      xb.set_switch(h, v, rng.next_bool(0.3));
    }
  }
  for (int a = 0; a < xb.num_wires(); ++a) {
    for (int b = 0; b < xb.num_wires(); ++b) {
      for (int c = 0; c < xb.num_wires(); ++c) {
        const int ab = xb.path_switch_count(a, b);
        const int bc = xb.path_switch_count(b, c);
        const int ac = xb.path_switch_count(a, c);
        if (ab >= 0 && bc >= 0) {
          ASSERT_GE(ac, 0);
          EXPECT_LE(ac, ab + bc);
        }
      }
    }
  }
}

}  // namespace
}  // namespace ambit
