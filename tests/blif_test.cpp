// Tests for the BLIF exporter.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "logic/blif.h"
#include "util/error.h"

namespace ambit::logic {
namespace {

TEST(BlifTest, StructureOfSimpleModel) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  std::ostringstream out;
  write_blif(out, f, "exor");
  const std::string text = out.str();
  EXPECT_NE(text.find(".model exor"), std::string::npos);
  EXPECT_NE(text.find(".inputs in0 in1"), std::string::npos);
  EXPECT_NE(text.find(".outputs out0"), std::string::npos);
  EXPECT_NE(text.find(".names in0 in1 out0"), std::string::npos);
  EXPECT_NE(text.find("10 1"), std::string::npos);
  EXPECT_NE(text.find("01 1"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(BlifTest, CustomLabels) {
  const Cover f = Cover::parse(2, 2, {"1- 10", "-1 01"});
  std::ostringstream out;
  write_blif(out, f, "m", {"a", "b"}, {"x", "y"});
  const std::string text = out.str();
  EXPECT_NE(text.find(".inputs a b"), std::string::npos);
  EXPECT_NE(text.find(".names a b x"), std::string::npos);
  EXPECT_NE(text.find(".names a b y"), std::string::npos);
}

TEST(BlifTest, SharedCubeAppearsInBothBlocks) {
  const Cover f = Cover::parse(2, 2, {"11 11"});
  std::ostringstream out;
  write_blif(out, f, "m");
  const std::string text = out.str();
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = text.find("11 1", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(BlifTest, ConstantZeroOutputAnnotated) {
  Cover f(2, 2);
  f.add(Cube::parse("1-", "10"));
  std::ostringstream out;
  write_blif(out, f, "m");
  EXPECT_NE(out.str().find("# constant 0"), std::string::npos);
}

TEST(BlifTest, LabelArityValidated) {
  const Cover f = Cover::parse(2, 1, {"10 1"});
  std::ostringstream out;
  EXPECT_THROW(write_blif(out, f, "m", {"only-one-label", "b", "c"}),
               ambit::Error);
}

TEST(BlifTest, FileRoundTripToDisk) {
  const Cover f = Cover::parse(3, 1, {"1-0 1"});
  const std::string path = testing::TempDir() + "/ambit_blif_test.blif";
  write_blif_file(path, f, "disk_model");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find(".model disk_model"), std::string::npos);
  EXPECT_NE(text.find("1-0 1"), std::string::npos);
}

}  // namespace
}  // namespace ambit::logic
