// Tests for the BLIF exporter and the flat two-level importer.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "logic/blif.h"
#include "util/error.h"

namespace ambit::logic {
namespace {

TEST(BlifTest, StructureOfSimpleModel) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  std::ostringstream out;
  write_blif(out, f, "exor");
  const std::string text = out.str();
  EXPECT_NE(text.find(".model exor"), std::string::npos);
  EXPECT_NE(text.find(".inputs in0 in1"), std::string::npos);
  EXPECT_NE(text.find(".outputs out0"), std::string::npos);
  EXPECT_NE(text.find(".names in0 in1 out0"), std::string::npos);
  EXPECT_NE(text.find("10 1"), std::string::npos);
  EXPECT_NE(text.find("01 1"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(BlifTest, CustomLabels) {
  const Cover f = Cover::parse(2, 2, {"1- 10", "-1 01"});
  std::ostringstream out;
  write_blif(out, f, "m", {"a", "b"}, {"x", "y"});
  const std::string text = out.str();
  EXPECT_NE(text.find(".inputs a b"), std::string::npos);
  EXPECT_NE(text.find(".names a b x"), std::string::npos);
  EXPECT_NE(text.find(".names a b y"), std::string::npos);
}

TEST(BlifTest, SharedCubeAppearsInBothBlocks) {
  const Cover f = Cover::parse(2, 2, {"11 11"});
  std::ostringstream out;
  write_blif(out, f, "m");
  const std::string text = out.str();
  std::size_t count = 0;
  for (std::size_t pos = 0; (pos = text.find("11 1", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
}

TEST(BlifTest, ConstantZeroOutputAnnotated) {
  Cover f(2, 2);
  f.add(Cube::parse("1-", "10"));
  std::ostringstream out;
  write_blif(out, f, "m");
  EXPECT_NE(out.str().find("# constant 0"), std::string::npos);
}

TEST(BlifTest, LabelArityValidated) {
  const Cover f = Cover::parse(2, 1, {"10 1"});
  std::ostringstream out;
  EXPECT_THROW(write_blif(out, f, "m", {"only-one-label", "b", "c"}),
               ambit::Error);
}

TEST(BlifTest, FileRoundTripToDisk) {
  const Cover f = Cover::parse(3, 1, {"1-0 1"});
  const std::string path = testing::TempDir() + "/ambit_blif_test.blif";
  write_blif_file(path, f, "disk_model");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find(".model disk_model"), std::string::npos);
  EXPECT_NE(text.find("1-0 1"), std::string::npos);
}

// ---------------------------------------------------------------- reader

/// Convenience: parse from a literal.
BlifFile parse(const std::string& text) {
  std::istringstream in(text);
  return read_blif(in, "test.blif");
}

TEST(BlifReadTest, RoundTripsWriterOutput) {
  const Cover f = Cover::parse(3, 2, {"1-0 10", "01- 01", "111 11"});
  std::ostringstream out;
  write_blif(out, f, "rt", {"a", "b", "c"}, {"x", "y"});
  std::istringstream in(out.str());
  const BlifFile parsed = read_blif(in, "rt.blif");

  EXPECT_EQ(parsed.model, "rt");
  EXPECT_EQ(parsed.input_labels, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parsed.output_labels, (std::vector<std::string>{"x", "y"}));
  // write_blif splits shared cubes per output; compare semantically.
  ASSERT_EQ(parsed.num_inputs(), 3);
  ASSERT_EQ(parsed.num_outputs(), 2);
  for (std::uint64_t m = 0; m < 8; ++m) {
    for (int o = 0; o < 2; ++o) {
      EXPECT_EQ(parsed.cover.covers_minterm(m, o), f.covers_minterm(m, o))
          << "minterm " << m << " output " << o;
    }
  }
}

TEST(BlifReadTest, AcceptsCommentsContinuationsAndConstants) {
  const BlifFile parsed = parse(
      ".model demo   # trailing comment\n"
      "# whole-line comment\n"
      ".inputs a \\\n"
      "b\n"
      ".outputs f one zero\n"
      ".names a b f\n"
      "1- 1\n"
      ".names one\n"
      "1\n"
      ".end\n"
      "garbage after .end is ignored\n");
  EXPECT_EQ(parsed.model, "demo");
  EXPECT_EQ(parsed.input_labels, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(parsed.output_labels,
            (std::vector<std::string>{"f", "one", "zero"}));
  // f = a, one = constant 1, zero = constant 0 (no .names block).
  EXPECT_TRUE(parsed.cover.covers_minterm(0b01, 0));
  EXPECT_FALSE(parsed.cover.covers_minterm(0b10, 0));
  EXPECT_TRUE(parsed.cover.covers_minterm(0, 1));
  EXPECT_TRUE(parsed.cover.covers_minterm(3, 1));
  EXPECT_FALSE(parsed.cover.covers_minterm(0, 2));
  EXPECT_FALSE(parsed.cover.covers_minterm(3, 2));
}

TEST(BlifReadTest, UnmentionedFaninsStayDontCare) {
  // A .names block that only uses one of two declared inputs: the
  // other input must not constrain the cube.
  const BlifFile parsed = parse(
      ".inputs a b\n"
      ".outputs f\n"
      ".names b f\n"
      "1 1\n");
  EXPECT_TRUE(parsed.cover.covers_minterm(0b10, 0));   // b=1, a=0
  EXPECT_TRUE(parsed.cover.covers_minterm(0b11, 0));   // b=1, a=1
  EXPECT_FALSE(parsed.cover.covers_minterm(0b01, 0));  // b=0
}

/// Every rejected input, with the reason the reader must give.
struct BadBlif {
  const char* label;
  const char* text;
  const char* expected_fragment;
};

class BlifReadErrorTest : public testing::TestWithParam<BadBlif> {};

TEST_P(BlifReadErrorTest, RejectsWithLineNumberedError) {
  const BadBlif& bad = GetParam();
  try {
    parse(bad.text);
    FAIL() << "expected ambit::Error for " << bad.label;
  } catch (const ambit::Error& e) {
    EXPECT_NE(std::string(e.what()).find("BLIF parse error at test.blif:"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(bad.expected_fragment),
              std::string::npos)
        << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rejections, BlifReadErrorTest,
    testing::Values(
        BadBlif{"no_outputs", ".inputs a\n.names a f\n1 1\n",
                "declares no outputs"},
        BadBlif{"empty_model", "", "declares no outputs"},
        BadBlif{"multi_level",
                ".inputs a b\n.outputs f\n.names a b t\n11 1\n",
                "not a declared primary output"},
        BadBlif{"undeclared_fanin",
                ".inputs a\n.outputs f\n.names a ghost f\n1- 1\n",
                "not a declared primary input"},
        BadBlif{"duplicate_signal", ".inputs a a\n.outputs f\n",
                "declared twice"},
        BadBlif{"duplicate_fanin",
                ".inputs a\n.outputs f\n.names a a f\n11 1\n",
                "duplicate fan-in"},
        BadBlif{"two_blocks_one_output",
                ".inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n",
                "more than one .names block"},
        BadBlif{"offset_row",
                ".inputs a\n.outputs f\n.names a f\n1 0\n",
                "only ON-set rows"},
        BadBlif{"row_width_mismatch",
                ".inputs a b\n.outputs f\n.names a b f\n1 1\n",
                "does not match the .names fan-in count"},
        BadBlif{"bad_row_char",
                ".inputs a\n.outputs f\n.names a f\n2 1\n",
                "bad character '2'"},
        BadBlif{"row_outside_block",
                ".inputs a\n.outputs f\n11 1\n",
                "outside a .names block"},
        BadBlif{"latch", ".inputs a\n.outputs f\n.latch a f re clk 0\n",
                "unsupported directive '.latch'"},
        BadBlif{"subckt", ".inputs a\n.outputs f\n.subckt sub x=a y=f\n",
                "unsupported directive '.subckt'"},
        BadBlif{"late_model", ".inputs a\n.model late\n.outputs f\n",
                ".model must precede"},
        BadBlif{"late_inputs",
                ".inputs a\n.outputs f\n.names a f\n1 1\n.inputs b\n",
                "after the first .names"},
        BadBlif{"dangling_continuation", ".inputs a\n.outputs f\n.names \\",
                "line continuation at end of input"},
        // Fuzz regression (fuzz_blif fixpoint check, also checked in
        // under tests/data/fuzz_regressions/fuzz_blif/): a label with
        // a mid-line backslash parsed fine, but write_blif then ends a
        // .names header with it and the reprint reads that trailing
        // backslash as a line continuation.
        BadBlif{"backslash_label", ".inputs a\n.outputs f\\ g\n",
                "contains a backslash"},
        BadBlif{"backslash_model", ".model m\\x\n.outputs f\n",
                "contains a backslash"}),
    [](const testing::TestParamInfo<BadBlif>& info) {
      return info.param.label;
    });

TEST(BlifReadTest, ReadBlifFileReportsPathInErrors) {
  EXPECT_THROW(read_blif_file(testing::TempDir() + "/ambit_no_such.blif"),
               ambit::Error);
  const std::string path = testing::TempDir() + "/ambit_blif_read_test.blif";
  const Cover f = Cover::parse(2, 1, {"10 1"});
  write_blif_file(path, f, "ondisk");
  const BlifFile parsed = read_blif_file(path);
  EXPECT_EQ(parsed.model, "ondisk");
  EXPECT_EQ(parsed.cover, f);
}

}  // namespace
}  // namespace ambit::logic
