// Tests for the GNOR gate and GNOR plane, including the paper's Fig. 2
// configuration Y = NOR(A, B', D) with input C inhibited.
#include <gtest/gtest.h>

#include "core/gnor.h"
#include "core/gnor_plane.h"
#include "util/error.h"

namespace ambit::core {
namespace {

TEST(GnorGateTest, FreshGateIsConstantOne) {
  GnorGate gate(4);
  EXPECT_TRUE(gate.evaluate({false, false, false, false}));
  EXPECT_TRUE(gate.evaluate({true, true, true, true}));
  EXPECT_EQ(gate.active_cells(), 0);
  EXPECT_EQ(gate.function_string(), "1");
}

TEST(GnorGateTest, SingleNCellIsInverter) {
  GnorGate gate(1);
  gate.set_cell(0, CellConfig::kPass);
  EXPECT_TRUE(gate.evaluate({false}));
  EXPECT_FALSE(gate.evaluate({true}));
}

TEST(GnorGateTest, SinglePCellIsBuffer) {
  // Y = NOR(A') = A.
  GnorGate gate(1);
  gate.set_cell(0, CellConfig::kInvert);
  EXPECT_FALSE(gate.evaluate({false}));
  EXPECT_TRUE(gate.evaluate({true}));
}

TEST(GnorGateTest, TwoInputNorAndExorBuildingBlock) {
  // Paper §3: "A 2-input function is given by NOR(C1 ⊙ A, C2 ⊙ B),
  // representing EXOR" — with one input inverted the gate computes one
  // EXOR product NOR-style; plain pass cells give classic NOR.
  GnorGate nor2(2);
  nor2.configure({CellConfig::kPass, CellConfig::kPass});
  EXPECT_TRUE(nor2.evaluate({false, false}));
  EXPECT_FALSE(nor2.evaluate({true, false}));
  EXPECT_FALSE(nor2.evaluate({false, true}));
  EXPECT_FALSE(nor2.evaluate({true, true}));

  // NOR(A', B) = A·B̄ : one EXOR minterm.
  GnorGate mixed(2);
  mixed.configure({CellConfig::kInvert, CellConfig::kPass});
  EXPECT_FALSE(mixed.evaluate({false, false}));
  EXPECT_TRUE(mixed.evaluate({true, false}));
  EXPECT_FALSE(mixed.evaluate({false, true}));
  EXPECT_FALSE(mixed.evaluate({true, true}));
}

// Fig. 2 of the paper: a 4-input GNOR with C1=V+ (A pass), C2=V−
// (B inverted), C3=V0 (C inhibited), C4=V+ (D pass):
// Y = NOR(A, B', D).
class Fig2Gate : public testing::Test {
 protected:
  Fig2Gate() : gate_(4) {
    gate_.configure({CellConfig::kPass, CellConfig::kInvert, CellConfig::kOff,
                     CellConfig::kPass});
  }
  GnorGate gate_;
};

TEST_F(Fig2Gate, FunctionStringMatchesPaper) {
  EXPECT_EQ(gate_.function_string(), "NOR(A, B', D)");
  EXPECT_EQ(gate_.active_cells(), 3);
}

TEST_F(Fig2Gate, FullTruthTable) {
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        for (int d = 0; d <= 1; ++d) {
          const bool expected = !(a == 1 || b == 0 || d == 1);
          EXPECT_EQ(gate_.evaluate({a == 1, b == 1, c == 1, d == 1}), expected)
              << "a=" << a << " b=" << b << " c=" << c << " d=" << d;
        }
      }
    }
  }
}

TEST_F(Fig2Gate, InhibitedInputHasNoInfluence) {
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int d = 0; d <= 1; ++d) {
        EXPECT_EQ(gate_.evaluate({a == 1, b == 1, false, d == 1}),
                  gate_.evaluate({a == 1, b == 1, true, d == 1}));
      }
    }
  }
}

TEST(GnorGateTest, ConfigureArityChecked) {
  GnorGate gate(3);
  EXPECT_THROW(gate.configure({CellConfig::kPass}), ambit::Error);
  EXPECT_THROW(gate.evaluate({true}), ambit::Error);
}

TEST(GnorGateTest, VoltageMapping) {
  const auto e = tech::default_cnfet_electrical();
  EXPECT_DOUBLE_EQ(pg_voltage_of(CellConfig::kPass, e), e.v_polarity_high);
  EXPECT_DOUBLE_EQ(pg_voltage_of(CellConfig::kInvert, e), e.v_polarity_low);
  EXPECT_DOUBLE_EQ(pg_voltage_of(CellConfig::kOff, e), e.v_polarity_off);
}

TEST(GnorGateTest, PolarityMapping) {
  EXPECT_EQ(polarity_of(CellConfig::kPass), PolarityState::kNType);
  EXPECT_EQ(polarity_of(CellConfig::kInvert), PolarityState::kPType);
  EXPECT_EQ(polarity_of(CellConfig::kOff), PolarityState::kOff);
}

TEST(GnorPlaneTest, FreshPlaneAllRowsOne) {
  GnorPlane plane(3, 2);
  const auto out = plane.evaluate({true, false});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0]);
  EXPECT_TRUE(out[1]);
  EXPECT_TRUE(out[2]);
}

TEST(GnorPlaneTest, RowsEvaluateIndependently) {
  GnorPlane plane(2, 2);
  plane.set_cell(0, 0, CellConfig::kPass);    // row0 = NOR(A) = Ā
  plane.set_cell(1, 1, CellConfig::kInvert);  // row1 = NOR(B') = B
  const auto out = plane.evaluate({true, true});
  EXPECT_FALSE(out[0]);
  EXPECT_TRUE(out[1]);
}

TEST(GnorPlaneTest, RowGateMatchesPlaneEvaluation) {
  GnorPlane plane(2, 3);
  plane.set_cell(1, 0, CellConfig::kInvert);
  plane.set_cell(1, 2, CellConfig::kPass);
  const GnorGate gate = plane.row_gate(1);
  for (int m = 0; m < 8; ++m) {
    const std::vector<bool> in{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    EXPECT_EQ(gate.evaluate(in), plane.evaluate(in)[1]);
  }
}

TEST(GnorPlaneTest, ActiveCellsAndCount) {
  GnorPlane plane(4, 5);
  EXPECT_EQ(plane.cell_count(), 20);
  EXPECT_EQ(plane.active_cells(), 0);
  plane.set_cell(0, 0, CellConfig::kPass);
  plane.set_cell(3, 4, CellConfig::kInvert);
  EXPECT_EQ(plane.active_cells(), 2);
}

TEST(GnorPlaneTest, AsciiArt) {
  GnorPlane plane(2, 3);
  plane.set_cell(0, 0, CellConfig::kPass);
  plane.set_cell(1, 1, CellConfig::kInvert);
  EXPECT_EQ(plane.to_ascii(), "+..\n.-.\n");
}

TEST(GnorPlaneTest, BoundsChecked) {
  GnorPlane plane(2, 2);
  EXPECT_THROW(plane.cell(2, 0), ambit::Error);
  EXPECT_THROW(plane.set_cell(0, 2, CellConfig::kPass), ambit::Error);
  EXPECT_THROW(plane.evaluate({true}), ambit::Error);
}

}  // namespace
}  // namespace ambit::core
