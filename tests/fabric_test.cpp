// Tests for the interleaved PLA/interconnect fabric (Fig. 3): stage
// validation, routing semantics, multi-plane cascades.
#include <gtest/gtest.h>

#include "core/fabric.h"
#include "core/gnor_pla.h"
#include "logic/truth_table.h"
#include "util/error.h"

namespace ambit::core {
namespace {

using logic::Cover;

/// Builds the two fabric stages of a GNOR PLA (identity routing).
void add_pla_stages(Fabric& fabric, const GnorPla& pla) {
  fabric.add_stage(FabricStage(
      Fabric::identity_routing(pla.num_inputs(), pla.num_inputs()),
      pla.product_plane()));
  fabric.add_stage(FabricStage(
      Fabric::identity_routing(pla.num_products(), pla.num_products()),
      pla.output_plane()));
}

TEST(FabricTest, EmptyFabricEchoesInputWidth) {
  const Fabric fabric(3);
  EXPECT_EQ(fabric.bus_width(), 3);
  const auto out = fabric.evaluate({true, false, true});
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
}

TEST(FabricTest, IdentityRoutingConnectsDiagonal) {
  const Crossbar xb = Fabric::identity_routing(3, 5);
  EXPECT_TRUE(xb.switch_on(0, 0));
  EXPECT_TRUE(xb.switch_on(1, 1));
  EXPECT_TRUE(xb.switch_on(2, 2));
  EXPECT_FALSE(xb.switch_on(0, 1));
  // Columns 3 and 4 stay undriven.
  int drivers_col3 = 0;
  for (int h = 0; h < 3; ++h) drivers_col3 += xb.switch_on(h, 3);
  EXPECT_EQ(drivers_col3, 0);
}

TEST(FabricTest, TwoStagePlaMatchesDirectEvaluation) {
  const Cover f = Cover::parse(3, 2, {"11- 10", "0-1 01", "10- 11"});
  const GnorPla pla = GnorPla::map_cover(f);
  Fabric fabric(3);
  add_pla_stages(fabric, pla);
  ASSERT_EQ(fabric.num_outputs(), pla.num_outputs());
  // Fabric carries the raw plane-2 rows (¬g); PLA buffers re-invert.
  EXPECT_EQ(exhaustive_truth_table(fabric),
            exhaustive_truth_table(pla).complemented());
}

TEST(FabricTest, PermutedRoutingReordersInputs) {
  // Route bus signal 1 to column 0 and bus signal 0 to column 1 of a
  // plane computing NOR(col0): output = ¬bus1.
  GnorPlane plane(1, 2);
  plane.set_cell(0, 0, CellConfig::kPass);
  Crossbar xb(2, 2);
  xb.set_switch(1, 0, true);
  xb.set_switch(0, 1, true);
  Fabric fabric(2);
  fabric.add_stage(FabricStage(std::move(xb), std::move(plane)));
  EXPECT_FALSE(fabric.evaluate({false, true})[0]);
  EXPECT_TRUE(fabric.evaluate({true, false})[0]);
}

TEST(FabricTest, UndrivenColumnReadsLow) {
  // Column 1 undriven: NOR(col0, col1) behaves as NOR(col0, 0) = ¬col0.
  GnorPlane plane(1, 2);
  plane.set_cell(0, 0, CellConfig::kPass);
  plane.set_cell(0, 1, CellConfig::kPass);
  Fabric fabric(1);
  fabric.add_stage(
      FabricStage(Fabric::identity_routing(1, 2), std::move(plane)));
  EXPECT_TRUE(fabric.evaluate({false})[0]);
  EXPECT_FALSE(fabric.evaluate({true})[0]);
}

TEST(FabricTest, FeedThroughWidensBus) {
  GnorPlane plane(2, 3);
  Fabric fabric(3);
  fabric.add_stage(FabricStage(Fabric::identity_routing(3, 3),
                               std::move(plane), /*feed=*/true));
  EXPECT_EQ(fabric.bus_width(), 5);
  const auto out = fabric.evaluate({true, false, true});
  ASSERT_EQ(out.size(), 5u);
  EXPECT_TRUE(out[0]);   // fed-through input 0
  EXPECT_FALSE(out[1]);  // fed-through input 1
  EXPECT_TRUE(out[3]);   // blank plane row = 1
}

TEST(FabricTest, FourPlaneCascadeComputesComposition) {
  // Stage pair 1: PLA computing g = x0 XOR x1 (raw rows = ¬g).
  // Stage pair 2: PLA computing the complement of its input's identity,
  // i.e. plane3 row = NOR(in) = ¬(¬g) = g, plane4 row = NOR(g) = ¬g.
  const Cover exor = Cover::parse(2, 1, {"10 1", "01 1"});
  const GnorPla pla = GnorPla::map_cover(exor);
  Fabric fabric(2);
  add_pla_stages(fabric, pla);

  GnorPlane plane3(1, 1);
  plane3.set_cell(0, 0, CellConfig::kPass);
  fabric.add_stage(FabricStage(Fabric::identity_routing(1, 1), plane3));
  GnorPlane plane4(1, 1);
  plane4.set_cell(0, 0, CellConfig::kPass);
  fabric.add_stage(FabricStage(Fabric::identity_routing(1, 1), plane4));

  EXPECT_EQ(fabric.num_stages(), 4);
  // Final bus = ¬(x0 XOR x1): XNOR.
  EXPECT_TRUE(fabric.evaluate({false, false})[0]);
  EXPECT_FALSE(fabric.evaluate({true, false})[0]);
  EXPECT_FALSE(fabric.evaluate({false, true})[0]);
  EXPECT_TRUE(fabric.evaluate({true, true})[0]);
}

TEST(FabricTest, StageValidationCatchesMismatches) {
  Fabric fabric(3);
  // Routing width mismatch (bus is 3, crossbar expects 2).
  EXPECT_THROW(
      fabric.add_stage(FabricStage(Crossbar(2, 2), GnorPlane(1, 2))),
      ambit::Error);
  // Routing/plane column mismatch.
  EXPECT_THROW(
      fabric.add_stage(FabricStage(Crossbar(3, 4), GnorPlane(1, 2))),
      ambit::Error);
}

TEST(FabricTest, MultipleDriversRejected) {
  Crossbar xb(2, 1);
  xb.set_switch(0, 0, true);
  xb.set_switch(1, 0, true);
  Fabric fabric(2);
  EXPECT_THROW(fabric.add_stage(FabricStage(std::move(xb), GnorPlane(1, 1))),
               ambit::Error);
}

TEST(FabricTest, CellCountSumsPlanesAndCrossbars) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const GnorPla pla = GnorPla::map_cover(f);
  Fabric fabric(2);
  add_pla_stages(fabric, pla);
  // Stage1: 2x2 crossbar + 2x2 plane; stage2: 2x2 crossbar + 1x2 plane.
  EXPECT_EQ(fabric.cell_count(), 4 + 4 + 4 + 2);
}

}  // namespace
}  // namespace ambit::core
