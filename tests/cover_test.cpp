// Tests for Cover: construction, cofactor, output restriction, literal
// merging, containment cleanup, binate variable selection.
#include <gtest/gtest.h>

#include "logic/cover.h"
#include "util/error.h"

namespace ambit::logic {
namespace {

Cover exor2() {
  return Cover::parse(2, 1, {"10 1", "01 1"});
}

TEST(CoverTest, ParseBuildsCubes) {
  const Cover f = exor2();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].to_string(), "10 1");
  EXPECT_EQ(f[1].to_string(), "01 1");
}

TEST(CoverTest, ParseValidatesArity) {
  EXPECT_THROW(Cover::parse(2, 1, {"101 1"}), Error);
  EXPECT_THROW(Cover::parse(2, 1, {"10 11"}), Error);
  EXPECT_THROW(Cover::parse(2, 1, {"10"}), Error);
}

TEST(CoverTest, AddRejectsEmptyCube) {
  Cover f(2, 1);
  Cube dead(2, 1);  // no outputs asserted
  EXPECT_THROW(f.add(dead), Error);
}

TEST(CoverTest, AddRejectsShapeMismatch) {
  Cover f(2, 1);
  EXPECT_THROW(f.add(Cube::parse("101", "1")), Error);
}

TEST(CoverTest, UniverseCoversEverything) {
  const Cover u = Cover::universe(3, 2);
  for (std::uint64_t m = 0; m < 8; ++m) {
    EXPECT_TRUE(u.covers_minterm(m, 0));
    EXPECT_TRUE(u.covers_minterm(m, 1));
  }
}

TEST(CoverTest, CoversMintermExor) {
  const Cover f = exor2();
  EXPECT_FALSE(f.covers_minterm(0b00, 0));
  EXPECT_TRUE(f.covers_minterm(0b01, 0));
  EXPECT_TRUE(f.covers_minterm(0b10, 0));
  EXPECT_FALSE(f.covers_minterm(0b11, 0));
}

TEST(CoverTest, CofactorDropsNonIntersecting) {
  const Cover f = exor2();
  Cube p = Cube::universe(2, 1);
  p.set_input(0, Literal::kOne);  // x0 = 1
  const Cover cf = f.cofactor(p);
  // Only "10 1" survives, cofactored to "-0 1".
  ASSERT_EQ(cf.size(), 1u);
  EXPECT_EQ(cf[0].input(0), Literal::kDontCare);
  EXPECT_EQ(cf[0].input(1), Literal::kZero);
}

TEST(CoverTest, RestrictedToOutputSelectsAndReshapes) {
  const Cover f = Cover::parse(2, 2, {"1- 10", "-1 01", "00 11"});
  const Cover f0 = f.restricted_to_output(0);
  const Cover f1 = f.restricted_to_output(1);
  EXPECT_EQ(f0.size(), 2u);
  EXPECT_EQ(f1.size(), 2u);
  EXPECT_EQ(f0.num_outputs(), 1);
  EXPECT_EQ(f0[0].to_string(), "1- 1");
  EXPECT_EQ(f1[1].to_string(), "00 1");
}

TEST(CoverTest, AndLiteralMergesShannonBranch) {
  Cover f = Cover::parse(2, 1, {"-1 1", "0- 1", "1- 1"});
  f.and_literal(0, true);
  // "-1" picks up x0=1; "0-" dies; "1-" unchanged.
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].to_string(), "11 1");
  EXPECT_EQ(f[1].to_string(), "1- 1");
}

TEST(CoverTest, SortAndDedupRemovesDuplicates) {
  Cover f = Cover::parse(2, 1, {"10 1", "01 1", "10 1"});
  f.sort_and_dedup();
  EXPECT_EQ(f.size(), 2u);
}

TEST(CoverTest, RemoveSingleCubeContained) {
  Cover f = Cover::parse(3, 1, {"1-- 1", "10- 1", "001 1"});
  f.remove_single_cube_contained();
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].to_string(), "1-- 1");
  EXPECT_EQ(f[1].to_string(), "001 1");
}

TEST(CoverTest, RemoveContainedKeepsOneOfEqualCubes) {
  Cover f = Cover::parse(2, 1, {"10 1", "10 1", "10 1"});
  f.remove_single_cube_contained();
  EXPECT_EQ(f.size(), 1u);
}

TEST(CoverTest, VarOccurrenceCounts) {
  const Cover f = Cover::parse(3, 1, {"10- 1", "1-0 1", "0-- 1"});
  const auto occ0 = f.var_occurrence(0);
  EXPECT_EQ(occ0.ones, 2);
  EXPECT_EQ(occ0.zeros, 1);
  const auto occ1 = f.var_occurrence(1);
  EXPECT_EQ(occ1.ones, 0);
  EXPECT_EQ(occ1.zeros, 1);
  const auto occ2 = f.var_occurrence(2);
  EXPECT_EQ(occ2.ones, 0);
  EXPECT_EQ(occ2.zeros, 1);
}

TEST(CoverTest, UnateDetection) {
  EXPECT_FALSE(exor2().is_unate());
  const Cover unate = Cover::parse(3, 1, {"1-- 1", "11- 1", "--0 1"});
  EXPECT_TRUE(unate.is_unate());
}

TEST(CoverTest, MostBinateVarPrefersBalancedColumns) {
  // x0: 2 ones, 2 zeros (binate, balanced); x1: 1 one, 1 zero (binate).
  const Cover f =
      Cover::parse(2, 1, {"11 1", "10 1", "00 1", "01 1"});
  EXPECT_EQ(f.most_binate_var(), 0);
}

TEST(CoverTest, MostBinateVarMinusOneWhenUnate) {
  const Cover f = Cover::parse(2, 1, {"1- 1", "-1 1"});
  EXPECT_EQ(f.most_binate_var(), -1);
  EXPECT_EQ(f.most_frequent_var(), 0);
}

TEST(CoverTest, HasUniversalInputCube) {
  Cover f = Cover::parse(2, 1, {"10 1"});
  EXPECT_FALSE(f.has_universal_input_cube());
  f.add(Cube::universe(2, 1));
  EXPECT_TRUE(f.has_universal_input_cube());
}

TEST(CoverTest, TotalLiterals) {
  const Cover f = Cover::parse(3, 1, {"10- 1", "--1 1"});
  EXPECT_EQ(f.total_literals(), 3);
}

TEST(CoverTest, AppendConcatenates) {
  Cover f = exor2();
  Cover g = Cover::parse(2, 1, {"11 1"});
  f.append(g);
  EXPECT_EQ(f.size(), 3u);
}

TEST(CoverTest, RemoveAtPreservesOrder) {
  Cover f = Cover::parse(2, 1, {"10 1", "01 1", "11 1"});
  f.remove_at(1);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].to_string(), "10 1");
  EXPECT_EQ(f[1].to_string(), "11 1");
}

}  // namespace
}  // namespace ambit::logic
