// Tests for the .pla reader/writer: directives, cube rows, type f/fd
// semantics, error reporting, round-tripping.
#include <gtest/gtest.h>

#include <sstream>

#include "logic/pla_io.h"
#include "logic/truth_table.h"
#include "util/error.h"

namespace ambit::logic {
namespace {

PlaFile parse(const std::string& text) {
  std::istringstream in(text);
  return read_pla(in, "test");
}

TEST(PlaIoTest, MinimalFile) {
  const PlaFile pla = parse(
      ".i 2\n"
      ".o 1\n"
      "10 1\n"
      "01 1\n"
      ".e\n");
  EXPECT_EQ(pla.num_inputs(), 2);
  EXPECT_EQ(pla.num_outputs(), 1);
  EXPECT_EQ(pla.onset.size(), 2u);
  EXPECT_TRUE(pla.dcset.empty());
}

TEST(PlaIoTest, LabelsAndProductCount) {
  const PlaFile pla = parse(
      ".i 2\n.o 2\n.p 1\n"
      ".ilb a b\n.ob f g\n"
      "1- 10\n"
      ".e\n");
  ASSERT_EQ(pla.input_labels.size(), 2u);
  EXPECT_EQ(pla.input_labels[1], "b");
  ASSERT_EQ(pla.output_labels.size(), 2u);
  EXPECT_EQ(pla.output_labels[0], "f");
}

TEST(PlaIoTest, WrongProductCountRejected) {
  EXPECT_THROW(parse(".i 2\n.o 1\n.p 3\n10 1\n.e\n"), Error);
}

TEST(PlaIoTest, TypeFdSplitsOnsetAndDcset) {
  const PlaFile pla = parse(
      ".i 2\n.o 2\n.type fd\n"
      "10 1-\n"
      "01 -1\n"
      ".e\n");
  // Row 1: out0 on, out1 dc. Row 2: out0 dc, out1 on.
  EXPECT_EQ(pla.onset.size(), 2u);
  EXPECT_EQ(pla.dcset.size(), 2u);
  EXPECT_TRUE(pla.onset[0].output(0));
  EXPECT_FALSE(pla.onset[0].output(1));
  EXPECT_FALSE(pla.dcset[0].output(0));
  EXPECT_TRUE(pla.dcset[0].output(1));
}

TEST(PlaIoTest, TypeFIgnoresDashOutputs) {
  const PlaFile pla = parse(
      ".i 2\n.o 2\n.type f\n"
      "10 1-\n"
      ".e\n");
  EXPECT_EQ(pla.onset.size(), 1u);
  EXPECT_TRUE(pla.dcset.empty());
}

TEST(PlaIoTest, FourAndTildeOutputChars) {
  const PlaFile pla = parse(
      ".i 1\n.o 2\n"
      "1 4~\n"
      ".e\n");
  ASSERT_EQ(pla.onset.size(), 1u);
  EXPECT_TRUE(pla.onset[0].output(0));
  EXPECT_FALSE(pla.onset[0].output(1));
}

TEST(PlaIoTest, PackedRowWithoutSpace) {
  const PlaFile pla = parse(".i 3\n.o 1\n1011\n.e\n");
  ASSERT_EQ(pla.onset.size(), 1u);
  EXPECT_EQ(pla.onset[0].to_string(), "101 1");
}

TEST(PlaIoTest, CommentsAndBlankLinesIgnored) {
  const PlaFile pla = parse(
      "# header comment\n"
      ".i 2\n.o 1\n"
      "\n"
      "10 1   # trailing comment\n"
      ".e\n");
  EXPECT_EQ(pla.onset.size(), 1u);
}

TEST(PlaIoTest, TwoAsInputDontCare) {
  const PlaFile pla = parse(".i 3\n.o 1\n122 1\n.e\n");
  EXPECT_EQ(pla.onset[0].to_string(), "1-- 1");
}

TEST(PlaIoTest, MissingDotIRejected) {
  EXPECT_THROW(parse(".o 1\n1 1\n.e\n"), Error);
}

TEST(PlaIoTest, RowBeforeDeclarationsRejected) {
  EXPECT_THROW(parse("10 1\n.i 2\n.o 1\n.e\n"), Error);
}

TEST(PlaIoTest, BadArityRejected) {
  EXPECT_THROW(parse(".i 2\n.o 1\n101 1\n.e\n"), Error);
  EXPECT_THROW(parse(".i 2\n.o 1\n10 11\n.e\n"), Error);
}

TEST(PlaIoTest, UnknownDirectiveRejected) {
  EXPECT_THROW(parse(".i 2\n.o 1\n.magic\n.e\n"), Error);
}

TEST(PlaIoTest, BadCharactersRejected) {
  EXPECT_THROW(parse(".i 2\n.o 1\n1x 1\n.e\n"), Error);
  EXPECT_THROW(parse(".i 2\n.o 1\n10 z\n.e\n"), Error);
}

TEST(PlaIoTest, ErrorsCarryFileAndLine) {
  try {
    parse(".i 2\n.o 1\n10 1\nbad row here now\n.e\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("test:4"), std::string::npos)
        << e.what();
  }
}

TEST(PlaIoTest, ArityMismatchNamesDeclaredWidths) {
  // The serve LOAD path makes malformed covers routine: the message
  // must say which declaration the row disagrees with, and where.
  try {
    parse(".i 2\n.o 1\n101 1\n.e\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test:3"), std::string::npos) << what;
    EXPECT_NE(what.find(".i declares 2"), std::string::npos) << what;
  }
  try {
    parse(".i 2\n.o 2\n10 111\n.e\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test:3"), std::string::npos) << what;
    EXPECT_NE(what.find(".o declares 2"), std::string::npos) << what;
  }
}

TEST(PlaIoTest, BadCharacterErrorsCarryLineNumbers) {
  // Character decoding happens in a second pass; the diagnostics must
  // still point at the SOURCE line of the offending row.
  try {
    parse(".i 2\n.o 1\n10 1\n1x 1\n.e\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("test:4"), std::string::npos)
        << e.what();
  }
}

TEST(PlaIoTest, DeclarationsAfterRowsRejected) {
  EXPECT_THROW(parse(".i 2\n.o 1\n10 1\n.i 3\n.e\n"), Error);
  EXPECT_THROW(parse(".i 2\n.o 1\n10 1\n.o 2\n.e\n"), Error);
}

TEST(PlaIoTest, NonNumericCountsRejected) {
  EXPECT_THROW(parse(".i x\n.o 1\n.e\n"), Error);
  EXPECT_THROW(parse(".i 2\n.o -1\n.e\n"), Error);
  EXPECT_THROW(parse(".i 2\n.o 1\n.p many\n10 1\n.e\n"), Error);
}

// Fuzz regression (fuzz_pla_io, also checked in as
// tests/data/fuzz_regressions/fuzz_pla_io/int_overflow_packed_row.pla):
// matching a packed row against .i 2147483647 summed num_inputs +
// num_outputs in int — signed overflow (UB) before the row was even
// rejected. The sum is now 64-bit, so this is a plain parse error.
TEST(PlaIoTest, IntMaxInputCountDoesNotOverflowPackedRowCheck) {
  EXPECT_THROW(parse(".i 2147483647\n.o 1\n01\n"), Error);
  EXPECT_THROW(parse(".i 2147483647\n.o 2147483647\n01\n"), Error);
}

TEST(PlaIoTest, WriteReadRoundTripPreservesFunction) {
  const PlaFile original = parse(
      ".i 3\n.o 2\n"
      "10- 11\n"
      "-11 10\n"
      "001 0-\n"
      ".e\n");
  std::ostringstream out;
  write_pla(out, original);
  std::istringstream in(out.str());
  const PlaFile reread = read_pla(in, "roundtrip");
  EXPECT_TRUE(equivalent(original.onset, reread.onset));
  EXPECT_TRUE(equivalent(original.dcset, reread.dcset));
  EXPECT_EQ(reread.type, original.type);
}

TEST(PlaIoTest, MakePlaGeneratesLabels) {
  const Cover f = Cover::parse(2, 2, {"10 11"});
  const PlaFile pla = make_pla(f, "gen");
  EXPECT_EQ(pla.name, "gen");
  ASSERT_EQ(pla.input_labels.size(), 2u);
  EXPECT_EQ(pla.input_labels[0], "in0");
  EXPECT_EQ(pla.output_labels[1], "out1");
  EXPECT_TRUE(equivalent(pla.onset, f));
}

TEST(PlaIoTest, FileRoundTripViaDisk) {
  const Cover f = Cover::parse(4, 1, {"10-- 1", "--11 1"});
  const PlaFile pla = make_pla(f, "disk");
  const std::string path = testing::TempDir() + "/ambit_pla_io_test.pla";
  write_pla_file(path, pla);
  const PlaFile reread = read_pla_file(path);
  EXPECT_TRUE(equivalent(pla.onset, reread.onset));
  EXPECT_EQ(reread.name, "ambit_pla_io_test");
}

TEST(PlaIoTest, MissingFileRaises) {
  EXPECT_THROW(read_pla_file("/nonexistent/path/foo.pla"), Error);
}

}  // namespace
}  // namespace ambit::logic
