// Tests for the deterministic synthetic benchmark generator.
#include <gtest/gtest.h>

#include "espresso/espresso.h"
#include "logic/synth_bench.h"
#include "util/error.h"

namespace ambit::logic {
namespace {

TEST(SynthBenchTest, DeterministicForSameSeed) {
  const SynthSpec spec{.num_inputs = 8, .num_outputs = 3, .num_cubes = 12,
                       .literals_per_cube = 5};
  EXPECT_EQ(generate_cover(spec, 42), generate_cover(spec, 42));
}

TEST(SynthBenchTest, DifferentSeedsDiffer) {
  const SynthSpec spec{.num_inputs = 8, .num_outputs = 3, .num_cubes = 12,
                       .literals_per_cube = 5};
  EXPECT_FALSE(generate_cover(spec, 1) == generate_cover(spec, 2));
}

TEST(SynthBenchTest, ShapeMatchesSpec) {
  const SynthSpec spec{.num_inputs = 10, .num_outputs = 4, .num_cubes = 20,
                       .literals_per_cube = 6};
  const Cover f = generate_cover(spec, 7);
  EXPECT_EQ(f.num_inputs(), 10);
  EXPECT_EQ(f.num_outputs(), 4);
  EXPECT_LE(f.size(), 20u);  // dedup may remove collisions
  EXPECT_GE(f.size(), 18u);
}

TEST(SynthBenchTest, LiteralCountRespected) {
  const SynthSpec spec{.num_inputs = 12, .num_outputs = 1, .num_cubes = 15,
                       .literals_per_cube = 7};
  const Cover f = generate_cover(spec, 3);
  for (const Cube& c : f) {
    EXPECT_EQ(c.input_literal_count(), 7);
  }
}

TEST(SynthBenchTest, EveryCubeAssertsAnOutput) {
  const SynthSpec spec{.num_inputs = 6, .num_outputs = 5, .num_cubes = 30,
                       .literals_per_cube = 4, .extra_output_rate = 0.0};
  const Cover f = generate_cover(spec, 11);
  for (const Cube& c : f) {
    EXPECT_GE(c.output_count(), 1);
  }
}

TEST(SynthBenchTest, SpecValidation) {
  EXPECT_THROW(
      generate_cover(SynthSpec{.num_inputs = 0, .num_outputs = 1}, 1),
      ambit::Error);
  EXPECT_THROW(generate_cover(SynthSpec{.num_inputs = 4,
                                        .num_outputs = 1,
                                        .num_cubes = 4,
                                        .literals_per_cube = 5},
                              1),
               ambit::Error);
}

TEST(SynthBenchTest, ReconstructedDimensionsStable) {
  // The committed benchmarks/data files rely on these exact outcomes;
  // guard them so a generator change cannot silently invalidate them.
  const SynthSpec max46{.num_inputs = 9, .num_outputs = 1, .num_cubes = 48,
                        .literals_per_cube = 7, .extra_output_rate = 0.0};
  EXPECT_EQ(espresso::minimize(generate_cover(max46, 14)).cover.size(), 46u);

  const SynthSpec apla{.num_inputs = 10, .num_outputs = 12, .num_cubes = 26,
                       .literals_per_cube = 7, .extra_output_rate = 0.12};
  EXPECT_EQ(espresso::minimize(generate_cover(apla, 7)).cover.size(), 25u);

  const SynthSpec t2{.num_inputs = 17, .num_outputs = 16, .num_cubes = 52,
                     .literals_per_cube = 9, .extra_output_rate = 0.10};
  EXPECT_EQ(espresso::minimize(generate_cover(t2, 1)).cover.size(), 52u);
}

}  // namespace
}  // namespace ambit::logic
