// The invariant layer's own tests: a checker nobody can see firing is
// a checker that silently rots. Every test here deliberately violates
// a documented contract — a dirty PatternBatch tail word, a kernel
// that lies about its output shape — and asserts that AMBIT_CHECK
// (util/check.h) aborts with the expected report. The whole suite
// skips itself in builds without AMBIT_ENABLE_INVARIANTS (the checks
// compile to nothing there by design), so it is meaningful exactly in
// the builds that claim to enforce invariants: the sanitizer CI jobs
// and any -DAMBIT_ENABLE_INVARIANTS=ON build.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "logic/pattern_batch.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ambit {
namespace {

using logic::PatternBatch;

#define SKIP_WITHOUT_INVARIANTS()                                       \
  if (!invariants_enabled()) {                                          \
    GTEST_SKIP() << "AMBIT_ENABLE_INVARIANTS is off in this build";     \
  }

/// A 3-signal, 70-pattern batch: two words per lane, 6 valid bits in
/// the tail word — room to corrupt.
PatternBatch small_batch() {
  PatternBatch batch(3, 70);
  for (std::uint64_t p = 0; p < 70; ++p) {
    batch.set(p, static_cast<int>(p % 3), true);
  }
  return batch;
}

/// Sets a bit beyond num_patterns() in the tail word of lane 0 — the
/// exact corruption the tail-mask contract forbids.
void corrupt_tail(PatternBatch& batch) {
  batch.lane(0)[batch.words_per_lane() - 1] |= ~batch.tail_mask();
}

TEST(InvariantTest, CleanBatchPassesTheProbe) {
  // Sanity both ways: the probe must be silent on a clean batch in
  // every build, so the death tests below fail for the right reason.
  PatternBatch batch = small_batch();
  batch.assert_tail_clean("InvariantTest");
  batch.slice(0, 70);
  PatternBatch dst(3, 70);
  dst.copy_patterns_from(batch, 0, 0, 70);
}

TEST(InvariantTest, SliceDiesOnCorruptTailWord) {
  SKIP_WITHOUT_INVARIANTS();
  PatternBatch batch = small_batch();
  corrupt_tail(batch);
  EXPECT_DEATH(batch.slice(0, 70), "tail padding of lane 0");
}

TEST(InvariantTest, PasteDiesOnCorruptSourceTail) {
  SKIP_WITHOUT_INVARIANTS();
  PatternBatch src = small_batch();
  corrupt_tail(src);
  PatternBatch dst(3, 70);
  EXPECT_DEATH(dst.paste(src, 0), "tail padding of lane 0");
}

TEST(InvariantTest, CopyPatternsFromDiesOnCorruptDestinationTail) {
  SKIP_WITHOUT_INVARIANTS();
  PatternBatch src = small_batch();
  PatternBatch dst(3, 70);
  corrupt_tail(dst);
  EXPECT_DEATH(dst.copy_patterns_from(src, 0, 0, 4),
               "tail padding of lane 0");
}

TEST(InvariantTest, LoadWordsRemasksInsteadOfDying) {
  // load_words is the EVALB ingestion path: stray tail bits arrive from
  // the network routinely, so the contract there is re-mask, not abort.
  PatternBatch batch(2, 70);
  std::vector<std::uint64_t> words(batch.total_words(), ~std::uint64_t{0});
  batch.load_words(words.data(), words.size());
  batch.assert_tail_clean("InvariantTest");
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(batch.lane(s)[1] & ~batch.tail_mask(), 0u);
  }
}

/// An Evaluator whose batch kernel violates the width contract on
/// demand: wrong lane count, wrong pattern count, or a dirty tail.
class EvilEvaluator : public Evaluator {
 public:
  enum class Lie { kNone, kLaneCount, kPatternCount, kDirtyTail };
  explicit EvilEvaluator(Lie lie) : lie_(lie) {}

  int num_inputs() const override { return 2; }
  int num_outputs() const override { return 1; }

 protected:
  std::vector<bool> do_evaluate(const std::vector<bool>& inputs) const override {
    if (lie_ == Lie::kLaneCount) {
      return {inputs[0], inputs[1]};  // two outputs, contract says one
    }
    return {inputs[0]};
  }

  logic::PatternBatch do_evaluate_batch(
      const logic::PatternBatch& inputs) const override {
    switch (lie_) {
      case Lie::kLaneCount:
        return logic::PatternBatch(2, inputs.num_patterns());
      case Lie::kPatternCount:
        return logic::PatternBatch(1, inputs.num_patterns() + 1);
      case Lie::kDirtyTail: {
        logic::PatternBatch out(1, inputs.num_patterns());
        out.lane(0)[out.words_per_lane() - 1] |= ~out.tail_mask();
        return out;
      }
      case Lie::kNone:
        break;
    }
    return logic::PatternBatch(1, inputs.num_patterns());
  }

 private:
  Lie lie_;
};

TEST(InvariantTest, EvaluatorDiesOnWrongScalarOutputWidth) {
  SKIP_WITHOUT_INVARIANTS();
  const EvilEvaluator evil(EvilEvaluator::Lie::kLaneCount);
  EXPECT_DEATH(evil.evaluate(std::vector<bool>{false, true}),
               "kernel produced 2 outputs");
}

TEST(InvariantTest, EvaluatorDiesOnWrongBatchLaneCount) {
  SKIP_WITHOUT_INVARIANTS();
  const EvilEvaluator evil(EvilEvaluator::Lie::kLaneCount);
  EXPECT_DEATH(evil.evaluate_batch(PatternBatch(2, 70)),
               "kernel produced 2 output lanes");
}

TEST(InvariantTest, EvaluatorDiesOnChangedPatternCount) {
  SKIP_WITHOUT_INVARIANTS();
  const EvilEvaluator evil(EvilEvaluator::Lie::kPatternCount);
  EXPECT_DEATH(evil.evaluate_batch(PatternBatch(2, 70)),
               "changed the pattern count");
}

TEST(InvariantTest, EvaluatorDiesOnDirtyKernelTail) {
  SKIP_WITHOUT_INVARIANTS();
  const EvilEvaluator evil(EvilEvaluator::Lie::kDirtyTail);
  EXPECT_DEATH(evil.evaluate_batch(PatternBatch(2, 70)),
               "tail padding of lane 0");
}

TEST(InvariantTest, OutOfRankLockAcquisitionDies) {
  SKIP_WITHOUT_INVARIANTS();
  // Holding a high-ranked lock, acquiring a lower-ranked one is an
  // inversion against the canonical hierarchy (docs/CONCURRENCY.md):
  // the detector must abort BEFORE blocking, naming both ranks.
  Mutex low(LockRank::kSessionRegistry);
  Mutex high(LockRank::kThreadPool);
  const MutexLock hold(high);
  EXPECT_DEATH({ const MutexLock bad(low); },
               "out-of-rank lock acquisition.*session-registry.*"
               "thread-pool");
}

/// The deliberate double-acquire below is exactly what Clang TSA
/// rejects at compile time, so it has to hide behind this opt-out to
/// exist at all — which is the point: the STATIC layer catches it in
/// annotated code, and this test proves the DYNAMIC layer catches it
/// when someone slips past the annotations.
void acquire_ignoring_tsa(Mutex& mutex) AMBIT_NO_THREAD_SAFETY_ANALYSIS {
  mutex.lock();
}

TEST(InvariantTest, RecursiveLockAcquisitionDies) {
  SKIP_WITHOUT_INVARIANTS();
  // On std::mutex this is undefined behavior that usually deadlocks;
  // the rank detector turns it into a deterministic abort.
  Mutex mutex(LockRank::kTest);
  const MutexLock hold(mutex);
  EXPECT_DEATH(acquire_ignoring_tsa(mutex),
               "recursive acquisition of the same mutex");
}

TEST(InvariantTest, SameRankSiblingAcquisitionDies) {
  SKIP_WITHOUT_INVARIANTS();
  // Two instances of the same rank (e.g. two circuits' verify mutexes)
  // must never nest: with no defined order between siblings, A-then-B
  // on one thread and B-then-A on another is a classic deadlock.
  Mutex first(LockRank::kCircuitVerify);
  Mutex second(LockRank::kCircuitVerify);
  const MutexLock hold(first);
  EXPECT_DEATH({ const MutexLock bad(second); },
               "same-rank lock acquisition");
}

TEST(InvariantTest, WellBehavedEvaluatorSurvivesShardedPath) {
  // The contract checks ride the hot path of the sharded sweep too;
  // a lawful kernel must pass them for any worker count.
  const EvilEvaluator honest(EvilEvaluator::Lie::kNone);
  ThreadPool pool(2);
  PatternBatch batch(2, 64 * 40 + 7);
  const PatternBatch seq = honest.evaluate_batch(batch);
  const PatternBatch par = honest.evaluate_batch(batch, pool);
  EXPECT_EQ(seq, par);
}

}  // namespace
}  // namespace ambit
