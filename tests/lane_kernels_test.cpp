// Tests for the SIMD lane-kernel layer (logic/lane_kernels.h) and its
// runtime dispatch policy (util/cpu_features.h): every tier this host
// can run must be BIT-IDENTICAL to the portable u64 reference on the
// primitive kernels and on full NOR-plane sweeps, across word counts
// that straddle every vector-strip and cache-tile boundary, and the
// force_tier/active_tier hooks must clamp and restore as documented.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "logic/lane_kernels.h"
#include "logic/pattern_batch.h"
#include "util/cpu_features.h"
#include "util/rng.h"

namespace ambit {
namespace {

using logic::PatternBatch;
namespace lanes = logic::lanes;

/// Restores the dispatch tier active at construction — tests that call
/// cpu::force_tier must not leak their override into later tests.
class TierGuard {
 public:
  TierGuard() : entry_(cpu::active_tier()) {}
  ~TierGuard() { cpu::force_tier(entry_); }

 private:
  cpu::SimdTier entry_;
};

/// The tiers this host can actually execute: always the scalar
/// reference, plus the detected SIMD tier when there is one.
std::vector<cpu::SimdTier> available_tiers() {
  std::vector<cpu::SimdTier> tiers{cpu::SimdTier::kScalar};
  if (cpu::detected_tier() != cpu::SimdTier::kScalar) {
    tiers.push_back(cpu::detected_tier());
  }
  return tiers;
}

std::vector<std::uint64_t> random_words(std::uint64_t n, Rng& rng) {
  std::vector<std::uint64_t> words(n);
  for (std::uint64_t& w : words) {
    w = rng.next_u64();
  }
  return words;
}

/// Fills every lane of `batch` with random words and re-masks the tail.
void randomize(PatternBatch& batch, Rng& rng) {
  const std::uint64_t wpl = batch.words_per_lane();
  for (int s = 0; s < batch.num_signals(); ++s) {
    std::uint64_t* lane = batch.lane(s);
    for (std::uint64_t w = 0; w < wpl; ++w) {
      lane[w] = rng.next_u64();
    }
    if (wpl > 0) {
      lane[wpl - 1] &= batch.tail_mask();
    }
  }
}

// ---------------------------------------------------------------------------
// cpu_features: detection, naming, and the force_tier test hook.
// ---------------------------------------------------------------------------

TEST(CpuFeaturesTest, TierNamesAreStable) {
  EXPECT_STREQ(cpu::tier_name(cpu::SimdTier::kScalar), "scalar");
  EXPECT_STREQ(cpu::tier_name(cpu::SimdTier::kNeon), "neon");
  EXPECT_STREQ(cpu::tier_name(cpu::SimdTier::kAvx2), "avx2");
}

TEST(CpuFeaturesTest, ActiveTierFollowsForceTier) {
  TierGuard guard;
  EXPECT_EQ(cpu::force_tier(cpu::SimdTier::kScalar), cpu::SimdTier::kScalar);
  EXPECT_EQ(cpu::active_tier(), cpu::SimdTier::kScalar);
  const cpu::SimdTier installed = cpu::force_tier(cpu::detected_tier());
  EXPECT_EQ(installed, cpu::detected_tier());
  EXPECT_EQ(cpu::active_tier(), installed);
}

TEST(CpuFeaturesTest, ForceTierClampsToWhatTheHostSupports) {
  TierGuard guard;
  for (const cpu::SimdTier asked :
       {cpu::SimdTier::kNeon, cpu::SimdTier::kAvx2}) {
    const cpu::SimdTier installed = cpu::force_tier(asked);
    if (asked == cpu::detected_tier()) {
      EXPECT_EQ(installed, asked);
    } else {
      EXPECT_EQ(installed, cpu::SimdTier::kScalar)
          << "asking for an unavailable tier must fall back to scalar";
    }
    EXPECT_EQ(cpu::active_tier(), installed);
  }
}

TEST(LaneKernelsTest, DispatchTableMatchesActiveTier) {
  TierGuard guard;
  for (const cpu::SimdTier tier : available_tiers()) {
    cpu::force_tier(tier);
    EXPECT_STREQ(lanes::kernels().name, cpu::tier_name(tier));
  }
}

TEST(LaneKernelsTest, KernelsForClampsUnavailableTiers) {
  EXPECT_STREQ(lanes::kernels_for(cpu::SimdTier::kScalar).name, "scalar");
  for (const cpu::SimdTier tier :
       {cpu::SimdTier::kNeon, cpu::SimdTier::kAvx2}) {
    const lanes::LaneKernels& table = lanes::kernels_for(tier);
    if (tier == cpu::detected_tier()) {
      EXPECT_STREQ(table.name, cpu::tier_name(tier));
    } else {
      EXPECT_STREQ(table.name, "scalar");
    }
  }
}

// ---------------------------------------------------------------------------
// Primitive kernels: every tier bit-identical to the u64 reference at
// word counts straddling the vector strips (4/8 words) on both sides.
// ---------------------------------------------------------------------------

TEST(LaneKernelsTest, OrPrimitivesBitIdenticalAcrossTiers) {
  Rng rng(91);
  for (const cpu::SimdTier tier : available_tiers()) {
    const lanes::LaneKernels& table = lanes::kernels_for(tier);
    for (const std::uint64_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u,
                                  17u, 31u, 32u, 33u, 64u, 100u}) {
      const std::vector<std::uint64_t> src = random_words(n, rng);
      const std::vector<std::uint64_t> base = random_words(n, rng);

      std::vector<std::uint64_t> expected = base;
      lanes::scalar_kernels().or_into(expected.data(), src.data(), n);
      std::vector<std::uint64_t> got = base;
      table.or_into(got.data(), src.data(), n);
      ASSERT_EQ(got, expected) << table.name << " or_into n=" << n;

      expected = base;
      lanes::scalar_kernels().or_not_into(expected.data(), src.data(), n);
      got = base;
      table.or_not_into(got.data(), src.data(), n);
      ASSERT_EQ(got, expected) << table.name << " or_not_into n=" << n;
    }
  }
}

TEST(LaneKernelsTest, ComplementMaskedBitIdenticalAcrossTiers) {
  Rng rng(92);
  // Both a partial tail mask and the ALL-ONES mask an exact multiple of
  // 64 patterns produces — the latter must complement the final word
  // fully, not clear it.
  for (const std::uint64_t tail_mask :
       {std::uint64_t{0x3FF}, ~std::uint64_t{0}}) {
    for (const cpu::SimdTier tier : available_tiers()) {
      const lanes::LaneKernels& table = lanes::kernels_for(tier);
      for (const std::uint64_t n : {1u, 2u, 4u, 5u, 8u, 9u, 17u, 33u}) {
        const std::vector<std::uint64_t> base = random_words(n, rng);
        std::vector<std::uint64_t> expected = base;
        lanes::scalar_kernels().complement_masked(expected.data(), n,
                                                  tail_mask);
        std::vector<std::uint64_t> got = base;
        table.complement_masked(got.data(), n, tail_mask);
        ASSERT_EQ(got, expected)
            << table.name << " complement_masked n=" << n
            << " tail_mask=" << tail_mask;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Plane sweeps: the composite kernel every evaluator rides. Random CSR
// planes over pattern counts that land a word short of, exactly on, and
// a bit past every word/strip boundary.
// ---------------------------------------------------------------------------

TEST(LaneKernelsTest, PlaneSweepBitIdenticalAcrossTiers) {
  TierGuard guard;
  Rng rng(93);
  const int num_in_lanes = 5;
  const int num_rows = 17;
  // 63/64/65 and 127/128/129 cross the word boundary on both sides of
  // the tail mask; 513 and 1031 cross the 8-word AVX2 strip and leave a
  // scalar remainder inside a tile.
  for (const std::uint64_t np : {1ull, 63ull, 64ull, 65ull, 127ull, 128ull,
                                 129ull, 513ull, 1031ull}) {
    PatternBatch in(num_in_lanes, np);
    randomize(in, rng);

    // A random plane: some rows empty, some NOR, some raw-OR, lanes and
    // polarities drawn at random.
    std::vector<lanes::SweepTerm> terms;
    std::vector<lanes::SweepRow> rows(num_rows);
    for (int r = 0; r < num_rows; ++r) {
      const std::uint64_t first = terms.size();
      const int nt = static_cast<int>(rng.next_u64() % 7);  // 0..6 terms
      for (int t = 0; t < nt; ++t) {
        terms.push_back(
            {.lane = static_cast<std::int32_t>(rng.next_u64() %
                                               num_in_lanes),
             .invert = rng.next_bool()});
      }
      rows[static_cast<std::size_t>(r)] = {
          .first_term = first,
          .num_terms = terms.size() - first,
          .complement = rng.next_bool()};
    }

    PatternBatch reference(num_rows, np);
    cpu::force_tier(cpu::SimdTier::kScalar);
    lanes::nor_plane_sweep(rows.data(), num_rows, terms.data(), in,
                           reference);
    for (const cpu::SimdTier tier : available_tiers()) {
      cpu::force_tier(tier);
      PatternBatch out(num_rows, np);
      lanes::nor_plane_sweep(rows.data(), num_rows, terms.data(), in, out);
      ASSERT_EQ(out, reference)
          << cpu::tier_name(tier) << " sweep differs at np=" << np;
      out.assert_tail_clean("PlaneSweepBitIdenticalAcrossTiers");
    }
  }
}

TEST(LaneKernelsTest, PlaneSweepConstantRowsAndFullWordTail) {
  TierGuard guard;
  // Exactly 128 patterns: tail_mask is ALL ONES, so a zero-term NOR row
  // must come out all ones in BOTH words — a kernel that confuses "no
  // tail" with "empty tail" zeroes the final word instead.
  const std::uint64_t np = 128;
  PatternBatch in(1, np);
  Rng rng(94);
  randomize(in, rng);
  const std::vector<lanes::SweepRow> rows = {
      {.first_term = 0, .num_terms = 0, .complement = true},   // constant 1
      {.first_term = 0, .num_terms = 0, .complement = false},  // constant 0
  };
  for (const cpu::SimdTier tier : available_tiers()) {
    cpu::force_tier(tier);
    PatternBatch out(2, np);
    lanes::nor_plane_sweep(rows.data(), 2, nullptr, in, out);
    EXPECT_EQ(out.tail_mask(), ~std::uint64_t{0});
    for (std::uint64_t w = 0; w < out.words_per_lane(); ++w) {
      EXPECT_EQ(out.lane(0)[w], ~std::uint64_t{0})
          << cpu::tier_name(tier) << " word " << w;
      EXPECT_EQ(out.lane(1)[w], 0u) << cpu::tier_name(tier) << " word " << w;
    }
  }
}

TEST(LaneKernelsTest, PlaneSweepHandlesEmptyShapes) {
  TierGuard guard;
  for (const cpu::SimdTier tier : available_tiers()) {
    cpu::force_tier(tier);
    // 0 patterns: nothing to write, but shapes still line up.
    {
      PatternBatch in(3, 0);
      PatternBatch out(2, 0);
      const std::vector<lanes::SweepRow> rows = {
          {.first_term = 0, .num_terms = 0, .complement = true},
          {.first_term = 0, .num_terms = 0, .complement = false}};
      EXPECT_NO_THROW(
          lanes::nor_plane_sweep(rows.data(), 2, nullptr, in, out));
      EXPECT_EQ(out.num_patterns(), 0u);
    }
    // 0 rows: the output batch has no lanes to write.
    {
      PatternBatch in(3, 70);
      PatternBatch out(0, 70);
      EXPECT_NO_THROW(lanes::nor_plane_sweep(nullptr, 0, nullptr, in, out));
    }
    // 0 input lanes: only constant rows are possible, and they must
    // still respect the tail mask.
    {
      PatternBatch in(0, 70);
      PatternBatch out(1, 70);
      const std::vector<lanes::SweepRow> rows = {
          {.first_term = 0, .num_terms = 0, .complement = true}};
      lanes::nor_plane_sweep(rows.data(), 1, nullptr, in, out);
      EXPECT_EQ(out.lane(0)[0], ~std::uint64_t{0});
      EXPECT_EQ(out.lane(0)[1], out.tail_mask());
    }
  }
}

// ---------------------------------------------------------------------------
// PatternBatch plumbing the kernels depend on.
// ---------------------------------------------------------------------------

TEST(LaneKernelsTest, PatternBatchStoreIsLaneAligned) {
  // The alignment contract: the BASE of the packed store is
  // kLaneAlignment-byte aligned (lane 0), whatever the geometry. Lane
  // pointers beyond lane 0 carry no such guarantee — kernels use
  // unaligned loads — but the base alignment is what makes the aligned
  // allocator observable, so pin it.
  for (const std::uint64_t np : {1ull, 64ull, 65ull, 129ull}) {
    PatternBatch batch(3, np);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(batch.lane(0)) %
                  lanes::kLaneAlignment,
              0u)
        << "np=" << np;
  }
}

TEST(LaneKernelsTest, ComplementLaneFullWordTailAcrossTiers) {
  TierGuard guard;
  // 64 patterns: tail_mask all ones; complementing a zero lane must set
  // every bit including bit 63 (a masked complement that rebuilds the
  // mask from num_patterns % 64 would clear the whole word).
  for (const cpu::SimdTier tier : available_tiers()) {
    cpu::force_tier(tier);
    PatternBatch batch(1, 64);
    batch.complement_lane(0);
    EXPECT_EQ(batch.lane(0)[0], ~std::uint64_t{0}) << cpu::tier_name(tier);
    batch.complement_lane(0);
    EXPECT_EQ(batch.lane(0)[0], 0u) << cpu::tier_name(tier);
  }
}

TEST(LaneKernelsTest, ComplementLaneZeroPatternsIsANoOp) {
  PatternBatch batch(2, 0);
  EXPECT_NO_THROW(batch.complement_lane(1));
  EXPECT_EQ(batch.words_per_lane(), 0u);
}

}  // namespace
}  // namespace ambit
