// Tests for the technology constants, the Table 1 area arithmetic and
// the RC delay model.
#include <gtest/gtest.h>

#include "tech/area_model.h"
#include "tech/delay_model.h"
#include "tech/technology.h"
#include "util/error.h"

namespace ambit::tech {
namespace {

TEST(TechnologyTest, PaperCellAreas) {
  EXPECT_DOUBLE_EQ(flash_technology().cell_area_l2, 40.0);
  EXPECT_DOUBLE_EQ(eeprom_technology().cell_area_l2, 100.0);
  EXPECT_DOUBLE_EQ(cnfet_technology().cell_area_l2, 60.0);
}

TEST(TechnologyTest, CnfetCellRelativeSizesMatchPaperText) {
  // "The CNFET basic cell is 50% larger than the Flash and 40% smaller
  //  than the EEPROM basic cell."
  EXPECT_DOUBLE_EQ(cnfet_technology().cell_area_l2 /
                       flash_technology().cell_area_l2,
                   1.5);
  EXPECT_DOUBLE_EQ(cnfet_technology().cell_area_l2 /
                       eeprom_technology().cell_area_l2,
                   0.6);
}

TEST(TechnologyTest, ColumnReplicationFlags) {
  EXPECT_TRUE(flash_technology().replicated_input_columns);
  EXPECT_TRUE(eeprom_technology().replicated_input_columns);
  EXPECT_FALSE(cnfet_technology().replicated_input_columns);
}

TEST(TechnologyTest, OffVoltageIsHalfVdd) {
  const CnfetElectrical e = default_cnfet_electrical();
  EXPECT_DOUBLE_EQ(e.v_polarity_off, e.vdd / 2);
}

TEST(AreaModelTest, CellCountFormulas) {
  const PlaDimensions dim{.inputs = 9, .outputs = 1, .products = 46};
  EXPECT_EQ(classical_cell_count(dim), (2 * 9 + 1) * 46);
  EXPECT_EQ(gnor_cell_count(dim), (9 + 1) * 46);
}

// The three Table 1 rows, exactly as published.
struct Table1Row {
  const char* name;
  PlaDimensions dim;
  double flash;
  double eeprom;
  double cnfet;
};

class Table1Areas : public testing::TestWithParam<Table1Row> {};

TEST_P(Table1Areas, ReproducesPaperNumbers) {
  const Table1Row& row = GetParam();
  EXPECT_DOUBLE_EQ(pla_area_l2(flash_technology(), row.dim), row.flash);
  EXPECT_DOUBLE_EQ(pla_area_l2(eeprom_technology(), row.dim), row.eeprom);
  EXPECT_DOUBLE_EQ(pla_area_l2(cnfet_technology(), row.dim), row.cnfet);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1Areas,
    testing::Values(
        Table1Row{"max46", {9, 1, 46}, 34960, 87400, 27600},
        Table1Row{"apla", {10, 12, 25}, 32000, 80000, 33000},
        Table1Row{"t2", {17, 16, 52}, 104000, 260000, 102960}),
    [](const testing::TestParamInfo<Table1Row>& info) {
      return info.param.name;
    });

TEST(AreaModelTest, Max46HeadlineSavings) {
  const PlaDimensions dim{.inputs = 9, .outputs = 1, .products = 46};
  // "saving ~21%" vs Flash, "up to 68% less area" vs EEPROM.
  EXPECT_NEAR(1.0 - cnfet_area_ratio(flash_technology(), dim), 0.2105, 0.001);
  EXPECT_NEAR(1.0 - cnfet_area_ratio(eeprom_technology(), dim), 0.684, 0.001);
}

TEST(AreaModelTest, AplaSmallOverheadVsFlash) {
  const PlaDimensions dim{.inputs = 10, .outputs = 12, .products = 25};
  // "otherwise a small area overhead (3%) can be seen".
  EXPECT_NEAR(cnfet_area_ratio(flash_technology(), dim) - 1.0, 0.031, 0.002);
}

TEST(AreaModelTest, CrossoverAtInputsEqualOutputs) {
  // Analytic crossover vs Flash: 60(i+o) < 40(2i+o) <=> o < i.
  for (int i = 1; i <= 20; ++i) {
    for (int o = 1; o <= 20; ++o) {
      const PlaDimensions dim{.inputs = i, .outputs = o, .products = 10};
      const double ratio = cnfet_area_ratio(flash_technology(), dim);
      if (o < i) {
        EXPECT_LT(ratio, 1.0) << "i=" << i << " o=" << o;
      } else if (o > i) {
        EXPECT_GT(ratio, 1.0) << "i=" << i << " o=" << o;
      } else {
        EXPECT_DOUBLE_EQ(ratio, 1.0);
      }
    }
  }
}

TEST(AreaModelTest, CnfetAlwaysBeatsEeprom) {
  // 60(i+o) < 100(2i+o) for all positive dimensions.
  for (int i = 1; i <= 20; ++i) {
    for (int o = 1; o <= 20; ++o) {
      const PlaDimensions dim{.inputs = i, .outputs = o, .products = 7};
      EXPECT_LT(cnfet_area_ratio(eeprom_technology(), dim), 1.0);
    }
  }
}

TEST(AreaModelTest, DimensionsOfCover) {
  const auto f = logic::Cover::parse(3, 2, {"1-- 10", "-11 01"});
  const PlaDimensions dim = dimensions_of(f);
  EXPECT_EQ(dim.inputs, 3);
  EXPECT_EQ(dim.outputs, 2);
  EXPECT_EQ(dim.products, 2);
}

TEST(AreaModelTest, RatioRequiresClassicalReference) {
  const PlaDimensions dim{.inputs = 2, .outputs = 1, .products = 1};
  EXPECT_THROW(cnfet_area_ratio(cnfet_technology(), dim), ambit::Error);
}

TEST(DelayModelTest, CapacitanceScalesLinearly) {
  const CnfetElectrical e = default_cnfet_electrical();
  EXPECT_DOUBLE_EQ(gnor_row_capacitance_f(0, e), 0.0);
  EXPECT_DOUBLE_EQ(gnor_row_capacitance_f(20, e),
                   2.0 * gnor_row_capacitance_f(10, e));
}

TEST(DelayModelTest, EvalSlowerThanPrecharge) {
  // Two devices in series discharge; one precharges.
  const CnfetElectrical e = default_cnfet_electrical();
  EXPECT_GT(gnor_row_eval_delay_s(16, e), gnor_row_precharge_delay_s(16, e));
}

TEST(DelayModelTest, GnorPlaFasterThanClassicalSameFunction) {
  // The GNOR plane has half the plane-1 columns -> lower row C -> faster.
  const CnfetElectrical e = default_cnfet_electrical();
  const PlaDimensions dim{.inputs = 12, .outputs = 4, .products = 30};
  EXPECT_LT(gnor_pla_cycle_s(dim, e), classical_pla_cycle_s(dim, e));
}

TEST(DelayModelTest, CycleGrowsWithProducts) {
  const CnfetElectrical e = default_cnfet_electrical();
  const PlaDimensions small{.inputs = 8, .outputs = 2, .products = 10};
  const PlaDimensions big{.inputs = 8, .outputs = 2, .products = 60};
  EXPECT_LT(gnor_pla_cycle_s(small, e), gnor_pla_cycle_s(big, e));
}

TEST(DelayModelTest, NegativeColumnsRejected) {
  const CnfetElectrical e = default_cnfet_electrical();
  EXPECT_THROW(gnor_row_capacitance_f(-1, e), ambit::Error);
}

}  // namespace
}  // namespace ambit::tech
