// Tests for the FPGA substrate: netlist generation, dual-rail vs GNOR
// packing, placement, routing, timing, and the full flow.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "fpga/flow.h"
#include "util/error.h"

namespace ambit::fpga {
namespace {

CircuitSpec small_spec() {
  CircuitSpec spec;
  spec.num_primary_inputs = 8;
  spec.num_primary_outputs = 4;
  spec.num_logic_blocks = 60;
  spec.num_levels = 5;
  return spec;
}

TEST(NetlistTest, GeneratorIsDeterministic) {
  const Netlist a = generate_circuit(small_spec(), 7);
  const Netlist b = generate_circuit(small_spec(), 7);
  ASSERT_EQ(a.num_blocks(), b.num_blocks());
  ASSERT_EQ(a.num_nets(), b.num_nets());
  for (int i = 0; i < a.num_blocks(); ++i) {
    EXPECT_EQ(a.block(i).name, b.block(i).name);
    EXPECT_EQ(a.block(i).fanins.size(), b.block(i).fanins.size());
  }
}

TEST(NetlistTest, GeneratedCircuitValidates) {
  const Netlist nl = generate_circuit(small_spec(), 3);
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.count_kind(BlockKind::kInput), 8);
  EXPECT_EQ(nl.count_kind(BlockKind::kOutput), 4);
  EXPECT_EQ(nl.count_kind(BlockKind::kLogic), 60);
}

TEST(NetlistTest, DepthMatchesSpec) {
  const Netlist nl = generate_circuit(small_spec(), 3);
  // Longest fan-in chain = num_levels (every level takes a fan-in from
  // the one below).
  std::vector<int> depth(static_cast<std::size_t>(nl.num_blocks()), 0);
  int max_depth = 0;
  for (const int b : nl.topological_order()) {
    int d = 0;
    for (const Fanin& f : nl.block(b).fanins) {
      d = std::max(d, depth[static_cast<std::size_t>(
                       nl.net(f.net).driver_block)]);
    }
    const bool logic = nl.block(b).kind == BlockKind::kLogic;
    depth[static_cast<std::size_t>(b)] = d + (logic ? 1 : 0);
    max_depth = std::max(max_depth, depth[static_cast<std::size_t>(b)]);
  }
  EXPECT_EQ(max_depth, 5);
}

TEST(NetlistTest, ComplementRateProducesDualRailNets) {
  CircuitSpec spec = small_spec();
  spec.complement_fanin_rate = 0.5;
  const Netlist nl = generate_circuit(spec, 11);
  EXPECT_GT(nl.count_complemented_nets(), nl.num_nets() / 4);
  spec.complement_fanin_rate = 0.0;
  const Netlist none = generate_circuit(spec, 11);
  EXPECT_EQ(none.count_complemented_nets(), 0);
}

TEST(NetlistTest, TopologicalOrderRespectsEdges) {
  const Netlist nl = generate_circuit(small_spec(), 5);
  const auto order = nl.topological_order();
  std::vector<int> position(static_cast<std::size_t>(nl.num_blocks()));
  for (int i = 0; i < static_cast<int>(order.size()); ++i) {
    position[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  }
  for (int b = 0; b < nl.num_blocks(); ++b) {
    for (const Fanin& f : nl.block(b).fanins) {
      EXPECT_LT(position[static_cast<std::size_t>(nl.net(f.net).driver_block)],
                position[static_cast<std::size_t>(b)]);
    }
  }
}

TEST(ArchTest, CnfetArchDoublesTilesAndShrinksPitch) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch std_arch = make_standard_arch(12, 12, e);
  const FpgaArch cn_arch = make_cnfet_arch(std_arch, e);
  EXPECT_GE(cn_arch.num_tiles(), 2 * std_arch.num_tiles());
  EXPECT_NEAR(cn_arch.tile_pitch_m, std_arch.tile_pitch_m / std::sqrt(2.0),
              1e-12);
  EXPECT_LT(cn_arch.clb_delay_s, std_arch.clb_delay_s);
}

TEST(ArchTest, SegmentDelayGrowsWithUtilizationAndPitch) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch std_arch = make_standard_arch(12, 12, e);
  const FpgaArch cn_arch = make_cnfet_arch(std_arch, e);
  EXPECT_GT(std_arch.segment_delay_s(1.0), std_arch.segment_delay_s(0.0));
  EXPECT_LT(cn_arch.segment_delay_s(0.5), std_arch.segment_delay_s(0.5));
}

TEST(PackTest, DualRailUsesMorePinsAndSignals) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  CircuitSpec spec = small_spec();
  spec.complement_fanin_rate = 0.5;
  const Netlist nl = generate_circuit(spec, 13);
  const PackedNetlist dual = pack(nl, arch, PackMode::kDualRail);
  const PackedNetlist gnor = pack(nl, arch, PackMode::kGnor);
  EXPECT_GT(dual.nets.size(), gnor.nets.size());
  EXPECT_GE(dual.num_logic_clusters(), gnor.num_logic_clusters());
}

TEST(PackTest, EveryLogicBlockPackedExactlyOnce) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  const Netlist nl = generate_circuit(small_spec(), 17);
  const PackedNetlist packed = pack(nl, arch, PackMode::kGnor);
  std::set<int> seen;
  for (const Cluster& c : packed.clusters) {
    for (const int b : c.blocks) {
      EXPECT_TRUE(seen.insert(b).second) << "block packed twice";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), nl.num_blocks());
}

TEST(PackTest, CapacityAndInputLimitsRespected) {
  const auto e = tech::default_cnfet_electrical();
  FpgaArch arch = make_standard_arch(12, 12, e);
  arch.clb_capacity = 3;
  arch.clb_max_inputs = 6;
  const Netlist nl = generate_circuit(small_spec(), 19);
  for (const PackMode mode : {PackMode::kDualRail, PackMode::kGnor}) {
    const PackedNetlist packed = pack(nl, arch, mode);
    for (const Cluster& c : packed.clusters) {
      if (c.is_io) {
        continue;
      }
      EXPECT_LE(static_cast<int>(c.blocks.size()), arch.clb_capacity);
      EXPECT_LE(c.input_pins, arch.clb_max_inputs);
    }
  }
}

TEST(PackTest, RoutedNetsCrossClusterBoundaries) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  const Netlist nl = generate_circuit(small_spec(), 23);
  const PackedNetlist packed = pack(nl, arch, PackMode::kGnor);
  for (const auto& net : packed.nets) {
    EXPECT_FALSE(net.sink_clusters.empty());
    for (const int s : net.sink_clusters) {
      EXPECT_NE(s, net.driver_cluster);
    }
  }
}

TEST(PlaceTest, AnnealingImprovesWirelength) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  const Netlist nl = generate_circuit(small_spec(), 29);
  const PackedNetlist packed = pack(nl, arch, PackMode::kGnor);
  const Placement result = place(packed, arch);
  EXPECT_LE(result.hpwl, result.initial_hpwl);
  EXPECT_GT(result.moves_accepted, 0);
}

TEST(PlaceTest, PlacementIsLegal) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  const Netlist nl = generate_circuit(small_spec(), 31);
  const PackedNetlist packed = pack(nl, arch, PackMode::kGnor);
  const Placement result = place(packed, arch);
  std::set<std::pair<int, int>> used;
  for (int c = 0; c < static_cast<int>(packed.clusters.size()); ++c) {
    const Location& l = result.cluster_location[static_cast<std::size_t>(c)];
    if (packed.clusters[static_cast<std::size_t>(c)].is_io) {
      const bool on_ring = l.x == -1 || l.x == arch.grid_width || l.y == -1 ||
                           l.y == arch.grid_height;
      EXPECT_TRUE(on_ring) << "pad off ring at (" << l.x << "," << l.y << ")";
    } else {
      EXPECT_GE(l.x, 0);
      EXPECT_LT(l.x, arch.grid_width);
      EXPECT_GE(l.y, 0);
      EXPECT_LT(l.y, arch.grid_height);
      EXPECT_TRUE(used.insert({l.x, l.y}).second)
          << "two clusters on one tile";
    }
  }
}

TEST(PlaceTest, DeterministicForSeed) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  const Netlist nl = generate_circuit(small_spec(), 37);
  const PackedNetlist packed = pack(nl, arch, PackMode::kGnor);
  const Placement a = place(packed, arch);
  const Placement b = place(packed, arch);
  EXPECT_EQ(a.hpwl, b.hpwl);
}

TEST(PlaceTest, OverflowRejected) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(2, 2, e);
  CircuitSpec spec = small_spec();
  const Netlist nl = generate_circuit(spec, 41);
  const PackedNetlist packed = pack(nl, arch, PackMode::kGnor);
  EXPECT_THROW(place(packed, arch), ambit::Error);
}

TEST(RouteTest, AllSinksReached) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  const Netlist nl = generate_circuit(small_spec(), 43);
  const PackedNetlist packed = pack(nl, arch, PackMode::kGnor);
  const Placement pl = place(packed, arch);
  const RoutingResult rt = route(packed, arch, pl);
  ASSERT_EQ(rt.trees.size(), packed.nets.size());
  for (std::size_t n = 0; n < packed.nets.size(); ++n) {
    EXPECT_EQ(rt.trees[n].sink_hops.size(),
              packed.nets[n].sink_clusters.size());
    EXPECT_EQ(rt.trees[n].sink_paths.size(),
              packed.nets[n].sink_clusters.size());
    for (std::size_t s = 0; s < rt.trees[n].sink_hops.size(); ++s) {
      EXPECT_EQ(static_cast<int>(rt.trees[n].sink_paths[s].size()),
                rt.trees[n].sink_hops[s]);
    }
  }
}

TEST(RouteTest, CapacityRespectedOnSuccess) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  const Netlist nl = generate_circuit(small_spec(), 47);
  const PackedNetlist packed = pack(nl, arch, PackMode::kGnor);
  const Placement pl = place(packed, arch);
  const RoutingResult rt = route(packed, arch, pl);
  ASSERT_TRUE(rt.success);
  for (const auto& [edge, usage] : rt.edge_usage) {
    EXPECT_LE(usage, arch.channel_width);
  }
}

TEST(RouteTest, TightChannelsForceIterations) {
  const auto e = tech::default_cnfet_electrical();
  FpgaArch narrow = make_standard_arch(12, 12, e);
  narrow.channel_width = 2;
  FpgaArch wide = narrow;
  wide.channel_width = 50;
  const Netlist nl = generate_circuit(small_spec(), 53);
  const PackedNetlist packed = pack(nl, narrow, PackMode::kDualRail);
  const Placement pl = place(packed, narrow);
  const RoutingResult rt_narrow = route(packed, narrow, pl);
  const RoutingResult rt_wide = route(packed, wide, pl);
  EXPECT_TRUE(rt_wide.success);
  EXPECT_LE(rt_wide.iterations, rt_narrow.iterations);
  EXPECT_LE(rt_wide.total_wirelength, rt_narrow.total_wirelength + 64);
}

TEST(TimingTest, CriticalPathPositiveAndConsistent) {
  const auto e = tech::default_cnfet_electrical();
  const FpgaArch arch = make_standard_arch(12, 12, e);
  const Netlist nl = generate_circuit(small_spec(), 59);
  const FlowReport report = run_flow(nl, arch, {.mode = PackMode::kGnor});
  EXPECT_GT(report.timing.critical_path_s, 0);
  EXPECT_NEAR(report.timing.fmax_hz * report.timing.critical_path_s, 1.0,
              1e-9);
  EXPECT_GE(report.timing.logic_levels, 1);
  EXPECT_LE(report.timing.logic_levels, 5);
  EXPECT_GE(report.timing.routing_fraction, 0);
  EXPECT_LE(report.timing.routing_fraction, 1);
}

TEST(TimingTest, CongestionLoadingSlowsDesign) {
  const auto e = tech::default_cnfet_electrical();
  FpgaArch coupled = make_standard_arch(12, 12, e);
  FpgaArch uncoupled = coupled;
  uncoupled.coupling_factor = 0;
  const Netlist nl = generate_circuit(small_spec(), 61);
  const PackedNetlist packed = pack(nl, coupled, PackMode::kDualRail);
  const Placement pl = place(packed, coupled);
  const RoutingResult rt = route(packed, coupled, pl);
  const TimingReport with = analyze_timing(nl, packed, rt, coupled);
  const TimingReport without = analyze_timing(nl, packed, rt, uncoupled);
  EXPECT_GT(with.critical_path_s, without.critical_path_s);
}

TEST(FlowTest, Table2ShapeOnSmallDesign) {
  // Scaled-down version of the Table 2 experiment: same circuit on the
  // standard and CNFET architectures; the CNFET variant must occupy
  // roughly half the die fraction and clock faster.
  const auto e = tech::default_cnfet_electrical();
  FpgaArch std_arch = make_standard_arch(8, 8, e);
  std_arch.channel_width = 20;
  const FpgaArch cn_arch = make_cnfet_arch(std_arch, e);

  CircuitSpec spec;
  spec.num_primary_inputs = 12;
  spec.num_primary_outputs = 6;
  spec.num_logic_blocks = 170;
  spec.num_levels = 6;
  const Netlist nl = generate_circuit(spec, 2008);

  const FlowReport std_rep = run_flow(nl, std_arch, {.mode = PackMode::kDualRail});
  const FlowReport cn_rep = run_flow(nl, cn_arch, {.mode = PackMode::kGnor});

  EXPECT_GT(std_rep.occupancy, 0.75);
  EXPECT_LT(cn_rep.occupancy, 0.62 * std_rep.occupancy);
  EXPECT_LT(cn_rep.nets_routed, std_rep.nets_routed);
  EXPECT_GT(cn_rep.timing.fmax_hz, 1.15 * std_rep.timing.fmax_hz);
}

}  // namespace
}  // namespace ambit::fpga
