// Tests for the pass-transistor crossbar: switching, connectivity,
// propagation, path resistance.
#include <gtest/gtest.h>

#include <cmath>

#include "core/crossbar.h"
#include "util/error.h"

namespace ambit::core {
namespace {

TEST(CrossbarTest, FreshCrossbarFullyDisconnected) {
  const Crossbar xb(3, 3);
  for (int h = 0; h < 3; ++h) {
    for (int v = 0; v < 3; ++v) {
      EXPECT_FALSE(xb.switch_on(h, v));
      EXPECT_FALSE(xb.connected(xb.horizontal_wire(h), xb.vertical_wire(v)));
    }
  }
  EXPECT_EQ(xb.active_switches(), 0);
}

TEST(CrossbarTest, SingleSwitchConnectsPair) {
  Crossbar xb(2, 2);
  xb.set_switch(0, 1, true);
  EXPECT_TRUE(xb.connected(xb.horizontal_wire(0), xb.vertical_wire(1)));
  EXPECT_FALSE(xb.connected(xb.horizontal_wire(0), xb.vertical_wire(0)));
  EXPECT_FALSE(xb.connected(xb.horizontal_wire(1), xb.vertical_wire(1)));
  EXPECT_EQ(xb.path_switch_count(xb.horizontal_wire(0), xb.vertical_wire(1)),
            1);
}

TEST(CrossbarTest, TransitiveConnectionThroughSharedWire) {
  // h0-v0 and h1-v0 closed: h0 and h1 short through v0.
  Crossbar xb(2, 2);
  xb.set_switch(0, 0, true);
  xb.set_switch(1, 0, true);
  EXPECT_TRUE(xb.connected(xb.horizontal_wire(0), xb.horizontal_wire(1)));
  EXPECT_EQ(xb.path_switch_count(xb.horizontal_wire(0), xb.horizontal_wire(1)),
            2);
}

TEST(CrossbarTest, ComponentsLabelConnectedGroups) {
  Crossbar xb(3, 3);
  xb.set_switch(0, 0, true);
  xb.set_switch(1, 0, true);  // {h0, h1, v0}
  xb.set_switch(2, 2, true);  // {h2, v2}
  const auto labels = xb.components();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[0], labels[xb.vertical_wire(0)]);
  EXPECT_EQ(labels[2], labels[xb.vertical_wire(2)]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[xb.vertical_wire(1)], labels[0]);
}

TEST(CrossbarTest, PropagationReachesComponentOnly) {
  Crossbar xb(2, 3);
  xb.set_switch(0, 0, true);
  xb.set_switch(0, 1, true);
  const auto seen = xb.propagate(xb.horizontal_wire(0), true);
  EXPECT_EQ(seen[xb.horizontal_wire(0)], true);
  EXPECT_EQ(seen[xb.vertical_wire(0)], true);
  EXPECT_EQ(seen[xb.vertical_wire(1)], true);
  EXPECT_FALSE(seen[xb.vertical_wire(2)].has_value());
  EXPECT_FALSE(seen[xb.horizontal_wire(1)].has_value());
}

TEST(CrossbarTest, PropagateCarriesValue) {
  Crossbar xb(1, 1);
  xb.set_switch(0, 0, true);
  EXPECT_EQ(xb.propagate(0, false)[xb.vertical_wire(0)], false);
  EXPECT_EQ(xb.propagate(0, true)[xb.vertical_wire(0)], true);
}

TEST(CrossbarTest, PathResistanceScalesWithHops) {
  const auto e = tech::default_cnfet_electrical();
  Crossbar xb(2, 2);
  xb.set_switch(0, 0, true);
  xb.set_switch(1, 0, true);
  xb.set_switch(1, 1, true);
  // h0 -> v0 -> h1 -> v1: three switches.
  EXPECT_DOUBLE_EQ(
      xb.path_resistance_ohm(xb.horizontal_wire(0), xb.vertical_wire(1), e),
      3 * e.r_on_ohm);
  EXPECT_DOUBLE_EQ(xb.path_resistance_ohm(0, 0, e), 0.0);
}

TEST(CrossbarTest, UnconnectedResistanceIsInfinite) {
  const auto e = tech::default_cnfet_electrical();
  const Crossbar xb(2, 2);
  EXPECT_TRUE(std::isinf(
      xb.path_resistance_ohm(xb.horizontal_wire(0), xb.vertical_wire(0), e)));
  EXPECT_EQ(xb.path_switch_count(0, xb.vertical_wire(0)), -1);
}

TEST(CrossbarTest, BfsFindsShortestPath) {
  // Two routes from h0 to v1: direct (1 switch) and via h1 (3 switches).
  Crossbar xb(2, 2);
  xb.set_switch(0, 0, true);
  xb.set_switch(1, 0, true);
  xb.set_switch(1, 1, true);
  xb.set_switch(0, 1, true);
  EXPECT_EQ(xb.path_switch_count(xb.horizontal_wire(0), xb.vertical_wire(1)),
            1);
}

TEST(CrossbarTest, CellCountAndActiveSwitches) {
  Crossbar xb(4, 5);
  EXPECT_EQ(xb.cell_count(), 20);
  xb.set_switch(1, 1, true);
  xb.set_switch(2, 3, true);
  EXPECT_EQ(xb.active_switches(), 2);
  xb.set_switch(1, 1, false);
  EXPECT_EQ(xb.active_switches(), 1);
}

TEST(CrossbarTest, BoundsChecked) {
  Crossbar xb(2, 2);
  EXPECT_THROW(xb.set_switch(2, 0, true), ambit::Error);
  EXPECT_THROW(xb.switch_on(0, 2), ambit::Error);
  EXPECT_THROW(xb.path_switch_count(0, 99), ambit::Error);
  EXPECT_THROW(xb.horizontal_wire(5), ambit::Error);
  EXPECT_THROW(xb.vertical_wire(-1), ambit::Error);
}

}  // namespace
}  // namespace ambit::core
