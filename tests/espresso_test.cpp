// Tests for EXPAND / IRREDUNDANT / REDUCE and the full Espresso loop.
//
// The battery cross-checks every transformation against exhaustive
// truth tables: the minimized cover must stay inside onset ∪ dcset and
// cover all of onset. Parameterized sweeps run the full loop over a
// grid of (inputs, outputs, cube count) with random functions.
#include <gtest/gtest.h>

#include <tuple>

#include "espresso/espresso.h"
#include "espresso/expand.h"
#include "espresso/irredundant.h"
#include "espresso/reduce.h"
#include "espresso/unate.h"
#include "logic/truth_table.h"
#include "util/rng.h"

namespace ambit::espresso {
namespace {

using logic::Cover;
using logic::Cube;
using logic::Literal;
using logic::TruthTable;

Cover random_multi_cover(ambit::Rng& rng, int ni, int no, int cubes) {
  Cover f(ni, no);
  for (int k = 0; k < cubes; ++k) {
    Cube c(ni, no);
    for (int i = 0; i < ni; ++i) {
      const auto r = rng.next_below(4);
      c.set_input(i, r == 0   ? Literal::kZero
                     : r == 1 ? Literal::kOne
                              : Literal::kDontCare);
    }
    // At least one output asserted.
    c.set_output(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(no))),
                 true);
    for (int j = 0; j < no; ++j) {
      if (rng.next_bool(0.25)) {
        c.set_output(j, true);
      }
    }
    if (!c.empty()) {
      f.add(c);
    }
  }
  if (f.empty()) {
    Cube c = Cube::universe(ni, no);
    f.add(c);
  }
  return f;
}

/// (onset ∖ dcset) ⊆ result ⊆ onset ∪ dcset, exhaustively. Minterms in
/// both onset and dcset are free: the don't-care wins (Espresso
/// semantics), so the minimizer may keep or drop them.
void expect_valid_minimization(const Cover& onset, const Cover& dcset,
                               const Cover& result) {
  const TruthTable t_on = TruthTable::from_cover(onset);
  const TruthTable t_dc = TruthTable::from_cover(dcset);
  const TruthTable t_res = TruthTable::from_cover(result);
  for (int j = 0; j < onset.num_outputs(); ++j) {
    for (std::uint64_t m = 0; m < t_on.num_minterms(); ++m) {
      if (t_on.get(m, j) && !t_dc.get(m, j)) {
        ASSERT_TRUE(t_res.get(m, j))
            << "minterm " << m << " output " << j << " lost";
      }
      if (t_res.get(m, j)) {
        ASSERT_TRUE(t_on.get(m, j) || t_dc.get(m, j))
            << "minterm " << m << " output " << j << " gained";
      }
    }
  }
}

TEST(ExpandTest, SingleCubeGrowsToPrime) {
  // f = x0x1 + x0x̄1 should expand a minterm-ish cube to x0.
  const Cover f = Cover::parse(2, 1, {"11 1", "10 1"});
  const Cover off = offset(f, Cover(2, 1));
  const Cube prime = expand_cube(f[0], off);
  EXPECT_EQ(prime.input(0), Literal::kOne);
  EXPECT_EQ(prime.input(1), Literal::kDontCare);
}

TEST(ExpandTest, ExpansionBlockedByOffset) {
  // EXOR cubes are already prime: no literal can lift.
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const Cover off = offset(f, Cover(2, 1));
  for (const Cube& c : f) {
    EXPECT_EQ(expand_cube(c, off), c);
  }
}

TEST(ExpandTest, CoverShrinksWhenCubesAbsorbed) {
  const Cover f = Cover::parse(2, 1, {"11 1", "10 1"});
  const Cover off = offset(f, Cover(2, 1));
  const Cover e = expand(f, off);
  EXPECT_EQ(e.size(), 1u);
  EXPECT_TRUE(logic::equivalent(e, f));
}

TEST(ExpandTest, OutputRaisingSharesProducts) {
  // Same product feeds both outputs; expansion should raise the
  // missing output bit.
  const Cover f = Cover::parse(2, 2, {"11 10", "11 01"});
  const Cover off = offset(f, Cover(2, 2));
  const Cover e = expand(f, off);
  EXPECT_EQ(e.size(), 1u);
  EXPECT_EQ(e[0].output_count(), 2);
  EXPECT_TRUE(logic::equivalent(e, f));
}

TEST(ExpandTest, PrimenessOnRandomCovers) {
  ambit::Rng rng(2020);
  for (int trial = 0; trial < 25; ++trial) {
    const int ni = 3 + static_cast<int>(rng.next_below(4));
    const Cover f = random_multi_cover(rng, ni, 1, 6);
    const Cover off = offset(f, Cover(ni, 1));
    const Cover e = expand(f, off);
    EXPECT_TRUE(logic::equivalent(e, f));
    // Every cube must be prime: raising any literal hits the offset.
    for (const Cube& c : e) {
      for (int i = 0; i < ni; ++i) {
        const Literal lit = c.input(i);
        if (lit != Literal::kZero && lit != Literal::kOne) {
          continue;
        }
        Cube raised = c;
        raised.set_input(i, Literal::kDontCare);
        bool hits_offset = false;
        for (const Cube& r : off) {
          if (raised.intersects(r)) {
            hits_offset = true;
            break;
          }
        }
        EXPECT_TRUE(hits_offset)
            << "cube " << c.to_string() << " not prime at var " << i;
      }
    }
  }
}

TEST(IrredundantTest, DropsAbsorbedCube) {
  // x0 + x0x1: second cube removable only via semantic coverage.
  const Cover f = Cover::parse(2, 1, {"1- 1", "11 1"});
  const Cover r = irredundant(f, Cover(2, 1));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(logic::equivalent(r, f));
}

TEST(IrredundantTest, DropsJointlyCoveredCube) {
  // x0x1 + x̄0 x2 + x1x2: the consensus term x1x2 is redundant.
  const Cover f = Cover::parse(3, 1, {"11- 1", "0-1 1", "-11 1"});
  const Cover r = irredundant(f, Cover(3, 1));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(logic::equivalent(r, f));
}

TEST(IrredundantTest, KeepsEssentialCubes) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const Cover r = irredundant(f, Cover(2, 1));
  EXPECT_EQ(r.size(), 2u);
}

TEST(IrredundantTest, DontCareEnablesRemoval) {
  const Cover f = Cover::parse(2, 1, {"1- 1", "01 1"});
  const Cover d = Cover::parse(2, 1, {"01 1"});
  // With the 01 minterm a don't-care, the second cube is redundant.
  const Cover r = irredundant(f, d);
  EXPECT_EQ(r.size(), 1u);
}

TEST(IrredundantTest, EquivalenceOnRandomCovers) {
  ambit::Rng rng(3030);
  for (int trial = 0; trial < 25; ++trial) {
    const int ni = 3 + static_cast<int>(rng.next_below(4));
    const int no = 1 + static_cast<int>(rng.next_below(3));
    const Cover f = random_multi_cover(rng, ni, no, 8);
    const Cover r = irredundant(f, Cover(ni, no));
    EXPECT_LE(r.size(), f.size());
    EXPECT_TRUE(logic::equivalent(r, f));
  }
}

TEST(ReduceTest, ShrinksOverlappingPrime) {
  // x0 + x1 with both primes; reducing one of them must keep function
  // intact when followed by nothing (reduce preserves equivalence).
  const Cover f = Cover::parse(2, 1, {"1- 1", "-1 1"});
  const Cover r = reduce(f, Cover(2, 1));
  EXPECT_TRUE(logic::equivalent(r, f));
}

TEST(ReduceTest, PreservesFunctionOnRandomCovers) {
  ambit::Rng rng(4040);
  for (int trial = 0; trial < 25; ++trial) {
    const int ni = 3 + static_cast<int>(rng.next_below(4));
    const int no = 1 + static_cast<int>(rng.next_below(3));
    const Cover f = random_multi_cover(rng, ni, no, 8);
    const Cover r = reduce(f, Cover(ni, no));
    EXPECT_TRUE(logic::equivalent(r, f))
        << "f:\n" << f.to_string() << "reduced:\n" << r.to_string();
    EXPECT_LE(r.size(), f.size());
  }
}

TEST(ReduceTest, ReductionIsMaximalWithDontCares) {
  const Cover f = Cover::parse(2, 1, {"1- 1", "-1 1"});
  const Cover d = Cover(2, 1);
  const Cover r = reduce(f, d);
  // Function unchanged even though cubes may have shrunk.
  EXPECT_TRUE(logic::equivalent(r, f));
}

TEST(EspressoTest, ExorIsAlreadyMinimal) {
  const Cover f = Cover::parse(2, 1, {"10 1", "01 1"});
  const auto result = minimize(f);
  EXPECT_EQ(result.cover.size(), 2u);
  EXPECT_TRUE(logic::equivalent(result.cover, f));
}

TEST(EspressoTest, MintermsOfConstantOneCollapse) {
  Cover f(3, 1);
  for (std::uint64_t m = 0; m < 8; ++m) {
    Cube c(3, 1);
    c.set_output(0, true);
    for (int i = 0; i < 3; ++i) {
      c.set_input(i, ((m >> i) & 1) ? Literal::kOne : Literal::kZero);
    }
    f.add(c);
  }
  const auto result = minimize(f);
  EXPECT_EQ(result.cover.size(), 1u);
  EXPECT_EQ(result.cover[0].input_literal_count(), 0);
}

TEST(EspressoTest, ClassicTrimExample) {
  // f = x̄0x̄1 + x0x1 + x0x̄1 = x0 + x̄1 : 2 cubes.
  const Cover f = Cover::parse(2, 1, {"00 1", "11 1", "10 1"});
  const auto result = minimize(f);
  EXPECT_EQ(result.cover.size(), 2u);
  EXPECT_TRUE(logic::equivalent(result.cover, f));
}

TEST(EspressoTest, DontCaresImproveCover) {
  // EXOR with one side made don't-care becomes a single cube.
  const Cover f = Cover::parse(2, 1, {"10 1"});
  const Cover d = Cover::parse(2, 1, {"01 1", "11 1"});
  const auto result = minimize(f, d);
  EXPECT_EQ(result.cover.size(), 1u);
  expect_valid_minimization(f, d, result.cover);
}

TEST(EspressoTest, MultiOutputSharingFindsCommonProduct) {
  // out0 = a·b, out1 = a·b + c; the a·b product must be shared.
  const Cover f = Cover::parse(3, 2, {"11- 10", "11- 01", "--1 01"});
  const auto result = minimize(f);
  EXPECT_EQ(result.cover.size(), 2u);
  EXPECT_TRUE(logic::equivalent(result.cover, f));
}

TEST(EspressoTest, ReduceEscapesLocalMinimum) {
  // A cover where plain expand+irredundant is stuck but
  // reduce->expand finds a smaller solution. Classic example:
  // f on 4 vars built from a suboptimal prime selection.
  const Cover f = Cover::parse(4, 1,
                               {"1-00 1", "-100 1", "1--1 1", "011- 1",
                                "0-11 1", "-011 1"});
  const EspressoOptions with_reduce{.max_loops = 16, .use_reduce = true};
  const EspressoOptions without_reduce{.max_loops = 0, .use_reduce = false};
  const auto full = minimize(f, with_reduce);
  const auto single_pass = minimize(f, without_reduce);
  EXPECT_TRUE(logic::equivalent(full.cover, f));
  EXPECT_TRUE(logic::equivalent(single_pass.cover, f));
  EXPECT_LE(full.cover.size(), single_pass.cover.size());
}

TEST(EspressoTest, StatsArePopulated) {
  const Cover f = Cover::parse(2, 1, {"11 1", "10 1", "01 1"});
  const auto result = minimize(f);
  EXPECT_EQ(result.stats.initial_cubes, 3u);
  EXPECT_GE(result.stats.after_first_expand, result.stats.final_cubes);
  EXPECT_EQ(result.stats.final_cubes, result.cover.size());
}

TEST(EspressoTest, EmptyOnsetStaysEmpty) {
  const auto result = minimize(Cover(3, 2));
  EXPECT_TRUE(result.cover.empty());
}

TEST(EspressoTest, IdempotentOnItsOwnOutput) {
  ambit::Rng rng(6060);
  for (int trial = 0; trial < 10; ++trial) {
    const Cover f = random_multi_cover(rng, 5, 2, 10);
    const auto once = minimize(f);
    const auto twice = minimize(once.cover);
    EXPECT_EQ(twice.cover.size(), once.cover.size());
    EXPECT_TRUE(logic::equivalent(twice.cover, once.cover));
  }
}

// ---------------------------------------------------------------------------
// Parameterized sweep: full loop on random functions over a shape grid.
// ---------------------------------------------------------------------------

using ShapeParam = std::tuple<int, int, int>;  // inputs, outputs, cubes

class EspressoSweep : public testing::TestWithParam<ShapeParam> {};

TEST_P(EspressoSweep, MinimizesAndPreservesFunction) {
  const auto [ni, no, cubes] = GetParam();
  ambit::Rng rng(static_cast<std::uint64_t>(ni * 1000 + no * 100 + cubes));
  for (int trial = 0; trial < 5; ++trial) {
    const Cover f = random_multi_cover(rng, ni, no, cubes);
    const auto result = minimize(f);
    ASSERT_TRUE(logic::equivalent(result.cover, f))
        << "shape (" << ni << "," << no << "," << cubes << ") trial " << trial;
    EXPECT_LE(result.cover.size(), f.size());
  }
}

TEST_P(EspressoSweep, RespectsDontCares) {
  const auto [ni, no, cubes] = GetParam();
  ambit::Rng rng(static_cast<std::uint64_t>(ni * 999 + no * 55 + cubes + 7));
  for (int trial = 0; trial < 3; ++trial) {
    const Cover f = random_multi_cover(rng, ni, no, cubes);
    const Cover d = random_multi_cover(rng, ni, no, cubes / 2 + 1);
    const auto result = minimize(f, d);
    expect_valid_minimization(f, d, result.cover);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, EspressoSweep,
    testing::Values(ShapeParam{3, 1, 4}, ShapeParam{4, 1, 6},
                    ShapeParam{5, 1, 10}, ShapeParam{6, 1, 14},
                    ShapeParam{7, 1, 18}, ShapeParam{4, 2, 6},
                    ShapeParam{5, 3, 10}, ShapeParam{6, 2, 12},
                    ShapeParam{7, 4, 16}, ShapeParam{8, 2, 20},
                    ShapeParam{9, 1, 24}, ShapeParam{10, 3, 20}),
    [](const testing::TestParamInfo<ShapeParam>& info) {
      std::string name = "i";
      name += std::to_string(std::get<0>(info.param));
      name += "_o";
      name += std::to_string(std::get<1>(info.param));
      name += "_c";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

}  // namespace
}  // namespace ambit::espresso
