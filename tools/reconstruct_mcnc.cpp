// One-shot tool: searches generator seeds until Espresso terminates at
// the published MCNC dimensions, then writes the reconstructed .pla
// files into benchmarks/data/. The committed files were produced by
// this tool; re-running it regenerates them bit-identically.
#include <cstdio>
#include <string>

#include "espresso/espresso.h"
#include "logic/pla_io.h"
#include "logic/synth_bench.h"

using namespace ambit;

namespace {

struct Target {
  const char* name;
  logic::SynthSpec spec;
  int want_products;
};

bool reconstruct(const Target& t, const std::string& dir) {
  for (std::uint64_t seed = 1; seed <= 4000; ++seed) {
    const logic::Cover raw = logic::generate_cover(t.spec, seed);
    const auto result = espresso::minimize(raw);
    if (static_cast<int>(result.cover.size()) != t.want_products) {
      continue;
    }
    // Commit the MINIMIZED cover so the file is prime & irredundant and
    // the bench's own Espresso run terminates at the same count.
    logic::PlaFile pla = logic::make_pla(result.cover, t.name);
    logic::write_pla_file(dir + "/" + t.name + ".pla", pla);
    std::printf("%-6s seed=%llu raw=%zu minimized=%zu  (i=%d o=%d)\n", t.name,
                static_cast<unsigned long long>(seed), raw.size(),
                result.cover.size(), t.spec.num_inputs, t.spec.num_outputs);
    return true;
  }
  std::printf("%-6s FAILED: no seed found\n", t.name);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "benchmarks/data";
  const Target targets[] = {
      {"max46",
       {.num_inputs = 9, .num_outputs = 1, .num_cubes = 48,
        .literals_per_cube = 7, .extra_output_rate = 0.0},
       46},
      {"apla",
       {.num_inputs = 10, .num_outputs = 12, .num_cubes = 26,
        .literals_per_cube = 7, .extra_output_rate = 0.12},
       25},
      {"t2",
       {.num_inputs = 17, .num_outputs = 16, .num_cubes = 52,
        .literals_per_cube = 9, .extra_output_rate = 0.10},
       52},
  };
  bool ok = true;
  for (const Target& t : targets) {
    ok = reconstruct(t, dir) && ok;
  }
  return ok ? 0 : 1;
}
