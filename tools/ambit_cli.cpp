// ambit_cli — the command-line front door to the toolkit.
//
// Usage:
//   ambit_cli <input.pla> [options]
//
// Options:
//   --phase-opt         Sasao output-phase optimization before mapping
//   --wpla              also synthesize a 4-plane Whirlpool PLA
//   --out-pla <path>    write the minimized cover as .pla
//   --out-blif <path>   write the minimized cover as BLIF
//   --verify            exhaustive equivalence check (<= 20 inputs)
//   --sim               switch-level batch timing sweep of the mapped
//                       array (exhaustive <= 12 inputs, else 4096
//                       seeded random patterns): worst-case phase
//                       delays and clock period, cross-checked
//                       bit-for-bit against the functional model
//   --serve             no input file: serve the ambit::serve line
//                       protocol over stdin/stdout (see ambit_serve
//                       for more options and docs/PROTOCOL.md for the
//                       wire grammar)
//   --tcp <host:port>   with --serve: serve over TCP instead of
//                       stdin/stdout (port 0 binds an ephemeral port,
//                       announced on stderr once listening)
//   --log-level <level> debug|info|warn|error|off (default info) for
//                       the structured serve logs (util/log.h)
//   --log-file <path>   append log records to <path> instead of stderr
//
// Prints the minimization summary, the GNOR mapping, and the Table-1
// style area comparison across Flash / EEPROM / CNFET.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include <iostream>

#ifdef _WIN32
#include <fcntl.h>
#include <io.h>
#endif

#include "core/evaluator.h"
#include "core/gnor_pla.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session.h"
#include "core/wpla.h"
#include "espresso/phase_opt.h"
#include "logic/blif.h"
#include "logic/pattern_batch.h"
#include "logic/pla_io.h"
#include "logic/truth_table.h"
#include "simulate/pla_sim.h"
#include "tech/area_model.h"
#include "tech/delay_model.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace ambit;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ambit_cli <input.pla> [--phase-opt] [--wpla]\n"
               "                 [--out-pla <path>] [--out-blif <path>]\n"
               "                 [--verify] [--sim]\n"
               "       ambit_cli --serve [--tcp <host:port>] "
               "[--io-model threads|epoll]\n"
               "                 [--log-level <level>] [--log-file <path>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  std::string input;
  std::string out_pla;
  std::string out_blif;
  bool phase_opt = false;
  bool wpla = false;
  bool verify = false;
  bool sim = false;
  bool serve_mode = false;
  std::string tcp_spec;
  serve::ServerOptions serve_options;
  bool io_model_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve") {
      serve_mode = true;
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_spec = argv[++i];
    } else if (arg == "--io-model" && i + 1 < argc) {
      const std::string value = argv[++i];
      try {
        serve_options.io_model = serve::parse_io_model(value);
      } catch (const Error&) {
        std::fprintf(stderr,
                     "ambit_cli: --io-model needs threads|epoll, got '%s'\n",
                     value.c_str());
        return 2;
      }
      io_model_set = true;
    } else if (arg == "--phase-opt") {
      phase_opt = true;
    } else if (arg == "--wpla") {
      wpla = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--sim") {
      sim = true;
    } else if (arg == "--out-pla" && i + 1 < argc) {
      out_pla = argv[++i];
    } else if (arg == "--out-blif" && i + 1 < argc) {
      out_blif = argv[++i];
    } else if (arg == "--log-level" && i + 1 < argc) {
      const std::string value = argv[++i];
      const auto level = logs::parse_level(value);
      if (!level.has_value()) {
        std::fprintf(stderr,
                     "ambit_cli: --log-level needs debug|info|warn|error|off, "
                     "got '%s'\n",
                     value.c_str());
        return 2;
      }
      logs::set_threshold(*level);
    } else if (arg == "--log-file" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (!logs::set_file(value)) {
        std::fprintf(stderr, "ambit_cli: cannot open log file '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] != '-' && input.empty()) {
      input = arg;
    } else {
      return usage();
    }
  }
  if (serve_mode) {
    // Delegate to the serve subsystem: a long-running session over
    // stdin/stdout (or TCP with --tcp), sharded across the default
    // worker count. ambit_serve has the full option surface
    // (--socket, --max-connections, coalescing, preloads).
    if (!input.empty() || phase_opt || wpla || verify || sim ||
        !out_pla.empty() || !out_blif.empty()) {
      return usage();
    }
    try {
      serve::Session session;
      serve::Server server(session, serve_options);
      if (!tcp_spec.empty()) {
        const auto [host, port] = serve::parse_host_port(tcp_spec);
        std::fprintf(stderr, "ambit_cli: serving tcp %s:%d; %s\n",
                     host.c_str(), port, serve::help_text().c_str());
        // Kernel-assigned real port announced on stderr while the
        // server runs (matters for port 0), so a driving script can
        // connect.
        std::atomic<int> bound_port{0};
        serve::serve_tcp_announced(
            bound_port,
            [&] { return server.serve_tcp(host, port, &bound_port); },
            [](int bound) {
              std::fprintf(stderr, "ambit_cli: tcp bound port %d\n", bound);
            });
      } else {
#ifdef _WIN32
        // EVALB frames carry raw bytes; text-mode stdio would translate
        // 0x0D 0x0A pairs and corrupt the framing.
        _setmode(_fileno(stdin), _O_BINARY);
        _setmode(_fileno(stdout), _O_BINARY);
#endif
        server.serve_stream(std::cin, std::cout);
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "ambit_cli: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (!tcp_spec.empty() || io_model_set) {
    // --tcp and --io-model only mean something with --serve.
    return usage();
  }
  if (input.empty()) {
    return usage();
  }

  try {
    const logic::PlaFile pla = logic::read_pla_file(input);
    std::printf("%s: %d inputs, %d outputs, %zu onset cubes, %zu dc cubes\n",
                pla.name.c_str(), pla.num_inputs(), pla.num_outputs(),
                pla.onset.size(), pla.dcset.size());

    logic::Cover minimized(0, 1);
    std::vector<bool> phases(static_cast<std::size_t>(pla.num_outputs()),
                             false);
    if (phase_opt) {
      const auto result =
          espresso::optimize_output_phases(pla.onset, pla.dcset);
      minimized = result.cover;
      phases = result.complemented;
      int flipped = 0;
      for (const bool f : phases) {
        flipped += f;
      }
      std::printf("espresso + phase opt: %zu -> %zu products (%d output(s) "
                  "complemented)\n",
                  result.baseline_cubes, minimized.size(), flipped);
    } else {
      const auto result = espresso::minimize(pla.onset, pla.dcset);
      minimized = result.cover;
      std::printf("espresso: %zu -> %zu products (%d reduce loop(s))\n",
                  result.stats.initial_cubes, minimized.size(),
                  result.stats.loops);
    }

    if (verify) {
      check(pla.num_inputs() <= 20, "--verify supports at most 20 inputs");
      if (phase_opt) {
        std::printf("verify: phase-opt result checked structurally via "
                    "mapped-PLA equivalence below\n");
      } else {
        // onset \ dcset must survive; result must stay inside onset+dc.
        logic::Cover reference = pla.onset;
        reference.append(pla.dcset);
        check(logic::contained_in(minimized, reference),
              "verification failed: minimized cover exceeds onset+dc");
        std::printf("verify: minimized cover within onset+dc: ok\n");
      }
    }

    const auto gnor = core::GnorPla::map_cover(minimized, phases);
    const auto dim = tech::dimensions_of(minimized);
    std::printf("\nGNOR PLA: %d x %d x %d, %lld programmable cells, "
                "cycle %.2f ns\n",
                gnor.num_inputs(), gnor.num_products(), gnor.num_outputs(),
                gnor.cell_count(),
                tech::gnor_pla_cycle_s(dim, tech::default_cnfet_electrical()) *
                    1e9);
    if (verify) {
      // Exhaustive: mapped PLA (which undoes the phases) vs onset,
      // swept bit-parallel through Evaluator::evaluate_batch.
      const auto table = logic::TruthTable::from_cover(pla.onset);
      const auto dc = logic::TruthTable::from_cover(pla.dcset);
      const auto start = std::chrono::steady_clock::now();
      const auto actual = exhaustive_truth_table(gnor);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const std::uint64_t mismatches = actual.count_mismatches(table, &dc);
      const double patterns = static_cast<double>(table.num_minterms());
      std::printf("verify: swept %.0f patterns in %.3f ms (%.1f Mpatterns/s, "
                  "batch path)\n",
                  patterns, seconds * 1e3,
                  seconds > 0 ? patterns / seconds / 1e6 : 0.0);
      std::printf("verify: mapped GNOR PLA equivalent to the input: %s\n",
                  mismatches == 0 ? "ok" : "FAILED");
      if (mismatches != 0) {
        return 1;
      }
    }

    if (sim) {
      // Switch-level timing sweep of the mapped array: exhaustive for
      // small inputs, a seeded random sample beyond that (the sweep
      // costs three full network settles per pattern).
      logic::PatternBatch patterns(0, 0);
      if (gnor.num_inputs() <= 12) {
        patterns = logic::PatternBatch::exhaustive(gnor.num_inputs());
      } else {
        constexpr std::uint64_t kSample = 4096;
        logic::PatternBatch sample(gnor.num_inputs(), kSample);
        Rng rng(0xA5B17);
        for (int i = 0; i < gnor.num_inputs(); ++i) {
          std::uint64_t* lane = sample.lane(i);
          for (std::uint64_t w = 0; w < sample.words_per_lane(); ++w) {
            lane[w] = rng.next_u64();
          }
          lane[sample.words_per_lane() - 1] &= sample.tail_mask();
        }
        patterns = std::move(sample);
      }
      simulate::GnorPlaSimulator simulator(gnor,
                                           tech::default_cnfet_electrical());
      ThreadPool pool(ThreadPool::default_workers());
      const auto sim_start = std::chrono::steady_clock::now();
      const simulate::BatchSimResult swept =
          simulator.simulate_batch(patterns, &pool);
      const double sim_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        sim_start)
              .count();
      const bool identical =
          swept.all_definite() && swept.outputs == gnor.evaluate_batch(patterns);
      std::printf("\nswitch-level sweep: %llu patterns in %.1f ms "
                  "(%.0f patterns/s)\n",
                  static_cast<unsigned long long>(swept.num_patterns()),
                  sim_seconds * 1e3,
                  sim_seconds > 0
                      ? static_cast<double>(swept.num_patterns()) / sim_seconds
                      : 0.0);
      std::printf("switch-level vs functional outputs: %s\n",
                  identical ? "bit-identical" : "MISMATCH");
      std::printf("worst delays: precharge %.2f ps, plane1 %.2f ps, "
                  "plane2 %.2f ps -> clock period %.2f ps "
                  "(critical pattern %llu, mean cycle %.2f ps)\n",
                  swept.worst_precharge_s() * 1e12,
                  swept.worst_plane1_eval_s() * 1e12,
                  swept.worst_plane2_eval_s() * 1e12,
                  swept.worst_cycle_s() * 1e12,
                  static_cast<unsigned long long>(swept.critical_pattern()),
                  swept.mean_cycle_s() * 1e12);
      std::printf("first-order model cycle (tech/delay_model.h): %.2f ps\n",
                  tech::gnor_pla_cycle_s(dim,
                                         tech::default_cnfet_electrical()) *
                      1e12);
      if (!identical) {
        return 1;
      }
    }

    TextTable area({"technology", "cells", "area [L^2]", "vs CNFET"});
    const double cnfet_area =
        tech::pla_area_l2(tech::cnfet_technology(), dim);
    for (const auto& t : {tech::flash_technology(), tech::eeprom_technology(),
                          tech::cnfet_technology()}) {
      const double a = tech::pla_area_l2(t, dim);
      area.add_row({t.name, std::to_string(tech::cell_count(t, dim)),
                    format_double(a, 0), format_percent(cnfet_area / a - 1.0)});
    }
    std::printf("\n%s", area.render().c_str());

    if (wpla) {
      const auto synth = core::synthesize_wpla(pla.onset);
      std::printf("\nWhirlpool PLA: flat %lld -> wpla %lld cells (%s), "
                  "%zu intermediate(s)\n",
                  synth.flat_cells, synth.wpla_cells,
                  format_percent(static_cast<double>(synth.wpla_cells) /
                                     static_cast<double>(synth.flat_cells) -
                                 1.0)
                      .c_str(),
                  synth.intermediate_outputs.size());
    }
    if (!out_pla.empty()) {
      logic::PlaFile out = logic::make_pla(minimized, pla.name + "_min");
      out.dcset = pla.dcset;
      logic::write_pla_file(out_pla, out);
      std::printf("\nwrote %s\n", out_pla.c_str());
    }
    if (!out_blif.empty()) {
      logic::write_blif_file(out_blif, minimized, pla.name + "_min");
      std::printf("wrote %s\n", out_blif.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "ambit_cli: %s\n", e.what());
    return 1;
  }
  return 0;
}
