// ambit_serve — the long-running evaluation service front door.
//
// Usage:
//   ambit_serve [options]
//
// Options:
//   --stdio              serve the line protocol over stdin/stdout
//                        (the default)
//   --socket <path>      serve over a Unix-domain socket at <path>,
//                        each connection on its own thread
//   --tcp <host:port>    serve over TCP (IPv4 or "localhost") — the
//                        same protocol, concurrency model and limits
//                        as --socket. The bound port is announced on
//                        stderr as "tcp bound port <n>" once
//                        listening; port 0 binds an ephemeral port,
//                        which that line is how you discover
//   --workers <n>        worker threads sharding every EVAL
//                        (default: AMBIT_THREADS or hardware threads)
//   --max-connections <n>
//                        connections served at once over --socket/--tcp
//                        (default 64); further accepts wait for a slot
//   --io-model <model>   connection multiplexing for --socket/--tcp:
//                        "epoll" (default on Linux: one event-loop
//                        thread, non-blocking sockets, evaluation on
//                        the worker pool — the C10k path) or "threads"
//                        (one thread per connection). Responses are
//                        byte-identical either way. The AMBIT_IO_MODEL
//                        environment variable overrides this flag;
//                        non-Linux platforms always run "threads"
//   --coalesce-window-us <n>
//                        fuse small EVAL/EVALB requests from different
//                        connections that arrive within <n> us into one
//                        bit-packed sharded sweep (default 0 = off;
//                        needs --socket or --tcp — stdio has a single
//                        connection, nothing to fuse across); responses
//                        are bit-identical either way
//   --coalesce-min-patterns <n>
//                        flush a fused batch early once it holds <n>
//                        patterns; requests of >= <n> patterns bypass
//                        coalescing (default 64)
//   --preload <name>=<path>
//                        LOAD a circuit before serving (repeatable)
//   --metrics <host:port>
//                        open an observability-only HTTP side listener
//                        answering GET /metrics (the Prometheus page)
//                        and GET /healthz; announced on stderr as
//                        "metrics bound port <n>" (port 0 = ephemeral).
//                        The same page is served in-band by the
//                        METRICS verb on any transport
//   --slow-request-us <n>
//                        log (at warn, rate-limited) the phase trace of
//                        any request taking >= <n> us (default 0 = off)
//   --log-level <level>  debug|info|warn|error|off (default info)
//   --log-file <path>    append log records to <path> instead of stderr
//
// The protocol grammar is documented in docs/PROTOCOL.md (normative)
// and src/serve/protocol.h; an interactive session starts with HELP.
// The observability surface — metric names, log schema, phase tracing
// — is documented in docs/OBSERVABILITY.md.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/client.h"

#include "serve/metrics_http.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/error.h"
#include "util/log.h"
#include "util/thread_pool.h"

#ifdef _WIN32
#include <fcntl.h>
#include <io.h>
#endif

using namespace ambit;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ambit_serve [--stdio] [--socket <path>] "
               "[--tcp <host:port>]\n"
               "                   [--workers <n>] [--max-connections <n>] "
               "[--io-model threads|epoll]\n"
               "                   [--coalesce-window-us <n>] "
               "[--coalesce-min-patterns <n>]\n"
               "                   [--preload <name>=<path>] "
               "[--metrics <host:port>]\n"
               "                   [--slow-request-us <n>] "
               "[--log-level <level>] [--log-file <path>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_spec;
  std::string metrics_spec;
  int workers = ThreadPool::default_workers();
  serve::ServerOptions options;
  std::vector<std::pair<std::string, std::string>> preloads;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      socket_path.clear();
      tcp_spec.clear();
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcp_spec = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
      if (workers < 1) {
        std::fprintf(stderr, "ambit_serve: --workers must be >= 1\n");
        return 2;
      }
    } else if (arg == "--max-connections" && i + 1 < argc) {
      options.max_connections = std::atoi(argv[++i]);
      if (options.max_connections < 1) {
        std::fprintf(stderr, "ambit_serve: --max-connections must be >= 1\n");
        return 2;
      }
    } else if (arg == "--io-model" && i + 1 < argc) {
      const std::string value = argv[++i];
      try {
        options.io_model = serve::parse_io_model(value);
      } catch (const Error&) {
        std::fprintf(stderr,
                     "ambit_serve: --io-model needs threads|epoll, got '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--coalesce-window-us" && i + 1 < argc) {
      // Strict digits, not atol: 0 legitimately means "off", so a typo
      // ("2OO") silently parsing to 0 would disable the feature the
      // operator explicitly asked for.
      const std::string value = argv[++i];
      const bool numeric =
          !value.empty() && value.size() <= 9 &&
          value.find_first_not_of("0123456789") == std::string::npos;
      if (!numeric) {
        std::fprintf(stderr,
                     "ambit_serve: --coalesce-window-us needs a "
                     "non-negative integer (microseconds), got '%s'\n",
                     value.c_str());
        return 2;
      }
      options.coalesce.window_us =
          static_cast<std::uint64_t>(std::stoul(value));
    } else if (arg == "--coalesce-min-patterns" && i + 1 < argc) {
      // Same strictness as --coalesce-window-us: "2OO" must not
      // silently become 2 and cripple the flush threshold.
      const std::string value = argv[++i];
      const bool numeric =
          !value.empty() && value.size() <= 9 &&
          value.find_first_not_of("0123456789") == std::string::npos;
      if (!numeric || value.find_first_not_of('0') == std::string::npos) {
        std::fprintf(stderr,
                     "ambit_serve: --coalesce-min-patterns needs a "
                     "positive integer, got '%s'\n",
                     value.c_str());
        return 2;
      }
      options.coalesce.min_patterns =
          static_cast<std::uint64_t>(std::stoul(value));
    } else if (arg == "--preload" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "ambit_serve: --preload needs <name>=<path>\n");
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_spec = argv[++i];
    } else if (arg == "--slow-request-us" && i + 1 < argc) {
      // Strict digits for the same reason as --coalesce-window-us: a
      // typo must not silently parse to 0 and disable the dump.
      const std::string value = argv[++i];
      const bool numeric =
          !value.empty() && value.size() <= 9 &&
          value.find_first_not_of("0123456789") == std::string::npos;
      if (!numeric) {
        std::fprintf(stderr,
                     "ambit_serve: --slow-request-us needs a non-negative "
                     "integer (microseconds), got '%s'\n",
                     value.c_str());
        return 2;
      }
      options.slow_request_us = static_cast<std::uint64_t>(std::stoul(value));
    } else if (arg == "--log-level" && i + 1 < argc) {
      const std::string value = argv[++i];
      const auto level = logs::parse_level(value);
      if (!level.has_value()) {
        std::fprintf(stderr,
                     "ambit_serve: --log-level needs "
                     "debug|info|warn|error|off, got '%s'\n",
                     value.c_str());
        return 2;
      }
      logs::set_threshold(*level);
    } else if (arg == "--log-file" && i + 1 < argc) {
      const std::string value = argv[++i];
      if (!logs::set_file(value)) {
        std::fprintf(stderr, "ambit_serve: cannot open log file '%s'\n",
                     value.c_str());
        return 2;
      }
    } else {
      return usage();
    }
  }
  if (!socket_path.empty() && !tcp_spec.empty()) {
    std::fprintf(stderr,
                 "ambit_serve: --socket and --tcp are mutually exclusive "
                 "(run two processes to serve both)\n");
    return 2;
  }
  if (socket_path.empty() && tcp_spec.empty() &&
      options.coalesce.window_us > 0) {
    // stdio serves exactly one connection, so there is nothing to fuse
    // across — the window would only add latency to every request.
    std::fprintf(stderr,
                 "ambit_serve: --coalesce-window-us needs a socket "
                 "transport (--socket or --tcp)\n");
    return 2;
  }

  try {
    serve::Session session(workers);
    for (const auto& [name, path] : preloads) {
      const auto circuit = session.load(name, path);
      std::fprintf(stderr, "ambit_serve: preloaded %s (%d in, %d out, %d products)\n",
                   circuit->name.c_str(), circuit->gnor.num_inputs(),
                   circuit->gnor.num_outputs(), circuit->gnor.num_products());
    }
    serve::Server server(session, options);
    // The side listener runs for the whole serve call and stops on
    // scope exit (its destructor) — after the transport has drained,
    // so a scrape can still read the final counters mid-SHUTDOWN.
    serve::MetricsHttpListener metrics_listener;
    if (!metrics_spec.empty()) {
      const auto [metrics_host, metrics_port] =
          serve::parse_host_port(metrics_spec);
      int bound = 0;
      metrics_listener.start(
          metrics_host, metrics_port,
          [&server] { return server.metrics_page(); }, &bound);
      // Same contract as "tcp bound port": scripts binding port 0
      // discover the real port from this stderr line.
      std::fprintf(stderr, "ambit_serve: metrics bound port %d\n", bound);
    }
    const auto report_served = [](std::uint64_t served) {
      std::fprintf(stderr, "ambit_serve: served %llu request(s)\n",
                   static_cast<unsigned long long>(served));
    };
    const auto describe_coalescing = [&options]() -> std::string {
      if (options.coalesce.window_us == 0) {
        return "coalescing off";
      }
      return "coalescing " + std::to_string(options.coalesce.window_us) +
             " us / " + std::to_string(options.coalesce.min_patterns) +
             " patterns";
    };
    // The ANNOUNCED model is the resolved one: what the listener will
    // actually run, after the AMBIT_IO_MODEL override and the platform
    // fallback.
    const char* io_model =
        serve::io_model_name(serve::resolve_io_model(options.io_model));
    if (!tcp_spec.empty()) {
      const auto [host, port] = serve::parse_host_port(tcp_spec);
      std::atomic<int> bound_port{0};
      std::fprintf(stderr,
                   "ambit_serve: serving tcp %s:%d, %d worker(s), up to %d "
                   "concurrent connection(s), io-model %s, %s; %s\n",
                   host.c_str(), port, session.pool().num_workers(),
                   options.max_connections, io_model,
                   describe_coalescing().c_str(), serve::help_text().c_str());
      // With port 0 the kernel picks the port, and a script driving
      // this tool needs it WHILE the server runs — serve_tcp publishes
      // it before the first accept and serve_tcp_announced prints it
      // without racing the blocking serve call.
      report_served(serve::serve_tcp_announced(
          bound_port,
          [&] { return server.serve_tcp(host, port, &bound_port); },
          [](int bound) {
            std::fprintf(stderr, "ambit_serve: tcp bound port %d\n", bound);
          }));
    } else if (!socket_path.empty()) {
      std::fprintf(stderr,
                   "ambit_serve: serving %s, %d worker(s), up to %d "
                   "concurrent connection(s), io-model %s, %s; %s\n",
                   socket_path.c_str(), session.pool().num_workers(),
                   options.max_connections, io_model,
                   describe_coalescing().c_str(), serve::help_text().c_str());
      report_served(server.serve_unix(socket_path));
    } else {
#ifdef _WIN32
      // EVALB frames carry raw bytes; text-mode stdio would translate
      // 0x0D 0x0A pairs and corrupt the framing.
      _setmode(_fileno(stdin), _O_BINARY);
      _setmode(_fileno(stdout), _O_BINARY);
#endif
      std::fprintf(stderr, "ambit_serve: serving stdin/stdout, %d worker(s); %s\n",
                   session.pool().num_workers(),
                   serve::help_text().c_str());
      report_served(server.serve_stream(std::cin, std::cout));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "ambit_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
