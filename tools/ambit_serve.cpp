// ambit_serve — the long-running evaluation service front door.
//
// Usage:
//   ambit_serve [options]
//
// Options:
//   --stdio              serve the line protocol over stdin/stdout
//                        (the default)
//   --socket <path>      serve over a Unix-domain socket at <path>,
//                        each connection on its own thread
//   --workers <n>        worker threads sharding every EVAL
//                        (default: AMBIT_THREADS or hardware threads)
//   --max-connections <n>
//                        connections served at once over --socket
//                        (default 64); further accepts wait for a slot
//   --preload <name>=<path>
//                        LOAD a circuit before serving (repeatable)
//
// The protocol grammar is documented in src/serve/protocol.h and the
// README's "Serving" section; an interactive session starts with HELP.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/error.h"
#include "util/thread_pool.h"

#ifdef _WIN32
#include <fcntl.h>
#include <io.h>
#endif

using namespace ambit;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: ambit_serve [--stdio] [--socket <path>]\n"
               "                   [--workers <n>] [--max-connections <n>]\n"
               "                   [--preload <name>=<path>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int workers = ThreadPool::default_workers();
  int max_connections = serve::kDefaultMaxConnections;
  std::vector<std::pair<std::string, std::string>> preloads;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--stdio") {
      socket_path.clear();
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
      if (workers < 1) {
        std::fprintf(stderr, "ambit_serve: --workers must be >= 1\n");
        return 2;
      }
    } else if (arg == "--max-connections" && i + 1 < argc) {
      max_connections = std::atoi(argv[++i]);
      if (max_connections < 1) {
        std::fprintf(stderr, "ambit_serve: --max-connections must be >= 1\n");
        return 2;
      }
    } else if (arg == "--preload" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "ambit_serve: --preload needs <name>=<path>\n");
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else {
      return usage();
    }
  }

  try {
    serve::Session session(workers);
    for (const auto& [name, path] : preloads) {
      const auto circuit = session.load(name, path);
      std::fprintf(stderr, "ambit_serve: preloaded %s (%d in, %d out, %d products)\n",
                   circuit->name.c_str(), circuit->gnor.num_inputs(),
                   circuit->gnor.num_outputs(), circuit->gnor.num_products());
    }
    serve::Server server(session,
                         serve::ServerOptions{.max_connections = max_connections});
    if (socket_path.empty()) {
#ifdef _WIN32
      // EVALB frames carry raw bytes; text-mode stdio would translate
      // 0x0D 0x0A pairs and corrupt the framing.
      _setmode(_fileno(stdin), _O_BINARY);
      _setmode(_fileno(stdout), _O_BINARY);
#endif
      std::fprintf(stderr, "ambit_serve: serving stdin/stdout, %d worker(s); %s\n",
                   session.pool().num_workers(),
                   serve::help_text().c_str());
      const std::uint64_t served = server.serve_stream(std::cin, std::cout);
      std::fprintf(stderr, "ambit_serve: served %llu request(s)\n",
                   static_cast<unsigned long long>(served));
    } else {
      std::fprintf(stderr,
                   "ambit_serve: serving %s, %d worker(s), up to %d "
                   "concurrent connection(s)\n",
                   socket_path.c_str(), session.pool().num_workers(),
                   max_connections);
      const std::uint64_t served = server.serve_unix(socket_path);
      std::fprintf(stderr, "ambit_serve: served %llu request(s)\n",
                   static_cast<unsigned long long>(served));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "ambit_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
