// Fuzz target: a whole serve connection (serve/server.h).
//
// Feeds arbitrary bytes through Server::serve_stream — the exact code
// path behind the stdio transport — so it exercises the full request
// loop: line framing, parse_request, dispatch, EVALB/SIMB binary
// payload framing and the drop-the-connection error paths. Inputs
// starting with the "CHNK" magic instead drive Server::serve_chunks,
// the incremental ConnState machine behind the epoll socket transport,
// with fuzzer-chosen read boundaries (see LLVMFuzzerTestOneInput).
// Two hermeticity measures:
//
//   * every well-formed "LOAD <name> <path>" line is rewritten to load
//     a fixed seed circuit from a temp file this harness wrote at
//     startup — the fuzzer must not open attacker-chosen paths (or
//     block forever on /dev/stdin);
//   * each input gets a fresh Session (0 workers: in-line evaluation)
//     and a fresh Server, so SHUTDOWN's latch and loaded-circuit state
//     cannot leak between runs and every input reproduces standalone.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "serve/server.h"
#include "serve/session.h"
#include "util/error.h"

namespace {

/// Writes the seed circuit once; every LOAD in every input points here.
const std::string& seed_pla_path() {
  static const std::string path = [] {
    const std::string p =
        (std::filesystem::temp_directory_path() / "ambit_fuzz_seed.pla")
            .string();
    std::ofstream out(p, std::ios::trunc);
    out << ".i 2\n.o 1\n10 1\n01 1\n.e\n";
    return p;
  }();
  return path;
}

bool is_ws(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Rewrites the path of every 3-token LOAD line (the only request that
/// opens a file); all other lines — including malformed LOADs, which
/// fail before touching the filesystem — pass through byte-for-byte.
std::string sanitize(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    std::size_t t = 0;
    while (t < line.size() && is_ws(line[t])) ++t;
    std::size_t t_end = t;
    while (t_end < line.size() && !is_ws(line[t_end])) ++t_end;
    int tokens = 0;
    bool in_token = false;
    for (std::size_t c = t; c < line.size(); ++c) {
      const bool ws = is_ws(line[c]);
      if (!ws && !in_token) ++tokens;
      in_token = !ws;
    }
    if (line.compare(t, t_end - t, "LOAD") == 0 && t_end > t && tokens == 3) {
      out += "LOAD c " + seed_pla_path();
    } else {
      out += line;
    }
    if (eol < text.size()) {
      out += '\n';
    }
    pos = eol + 1;
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  // Arbitrary-chunking mode: a "CHNK" magic selects the incremental
  // ConnState path (Server::serve_chunks — the epoll transport's state
  // machine) instead of the blocking serve_stream loop, with the
  // fuzzer choosing every read() boundary. Layout:
  //
  //   "CHNK" | count:1 | count bytes of chunk-size seeds | wire bytes
  //
  // Each seed byte maps to a chunk length in [1, 64], cycled over the
  // wire; count == 0 means one byte per chunk — the maximal split.
  // This is what drives EVALB/SIMB headers and payloads across every
  // possible read boundary, which the line-at-a-time serve_stream loop
  // structurally cannot reach.
  if (size >= 5 && std::memcmp(data, "CHNK", 4) == 0 &&
      size >= 5 + static_cast<std::size_t>(data[4])) {
    const std::size_t count = data[4];
    const std::uint8_t* seeds = data + 5;
    const std::string wire = sanitize(std::string(
        reinterpret_cast<const char*>(data + 5 + count), size - 5 - count));
    try {
      ambit::serve::Session session(0);
      ambit::serve::Server server(session);
      std::size_t pos = 0;
      std::size_t turn = 0;
      std::string out;
      server.serve_chunks(
          [&]() -> std::string {
            if (pos >= wire.size()) {
              return std::string();  // clean EOF
            }
            const std::size_t want =
                count == 0 ? 1 : (seeds[turn++ % count] % 64) + 1;
            const std::size_t len = std::min(want, wire.size() - pos);
            const std::string chunk = wire.substr(pos, len);
            pos += len;
            return chunk;
          },
          out);
    } catch (const ambit::Error&) {
    } catch (const std::bad_alloc&) {
    }
    return 0;
  }

  const std::string text =
      sanitize(std::string(reinterpret_cast<const char*>(data), size));
  try {
    ambit::serve::Session session(0);
    ambit::serve::Server server(session);
    std::istringstream in(text);
    std::ostringstream out;
    server.serve_stream(in, out);
  } catch (const ambit::Error&) {
    // request-level failures surface as ERR lines, not exceptions, so
    // this is rare (e.g. resource exhaustion) — but it is a clean exit
  } catch (const std::bad_alloc&) {
    // a fuzzed EVALB header may legitimately request a payload buffer
    // this process cannot serve; the server's contract is to fail the
    // request, but the fallback path may still propagate under ASan
  }
  return 0;
}

#include "fuzz_driver.h"
