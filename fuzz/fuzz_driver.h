// Standalone driver for the fuzz/ harnesses.
//
// Every harness defines the libFuzzer entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// and includes this header. Under -DAMBIT_LIBFUZZER=ON (clang) the
// header contributes nothing — libFuzzer's runtime provides main() and
// the coverage-guided engine. Everywhere else (gcc has no libFuzzer)
// CMake defines AMBIT_FUZZ_STANDALONE and this header supplies a main()
// with the same command-line shape libFuzzer uses:
//
//   fuzz_foo <corpus-dir-or-file>...        replay each input once, exit 0
//   fuzz_foo --fuzz <seconds> <corpus>...   random-mutation fuzzing from
//                                           the corpus for a wall-clock
//                                           budget (crash = abort, with
//                                           the dying input left in
//                                           ./<argv0>.last_input so it
//                                           can be minimized and checked
//                                           into tests/data/fuzz_regressions/)
//
// The mutation engine is deliberately tiny — bit flips, byte edits,
// block duplication/deletion and two-seed splices — because the
// standalone mode exists for smoke coverage and CI corpus replay, not
// to compete with libFuzzer. Nonexistent corpus directories are
// skipped with a note (a harness may legitimately have no recorded
// regressions yet).
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#if defined(AMBIT_FUZZ_STANDALONE)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace ambit::fuzz {

using Bytes = std::vector<std::uint8_t>;

inline Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

/// Collects the inputs behind one command-line path: a file is one
/// input, a directory is each regular file in it (sorted, so replay
/// order is stable). Missing paths are noted and skipped.
inline std::vector<std::filesystem::path> collect(const std::string& arg) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::error_code ec;
  const fs::file_status st = fs::status(arg, ec);
  if (ec || st.type() == fs::file_type::not_found) {
    std::fprintf(stderr, "note: corpus path %s does not exist, skipping\n",
                 arg.c_str());
    return files;
  }
  if (fs::is_directory(st)) {
    for (const auto& entry : fs::directory_iterator(arg)) {
      if (entry.is_regular_file()) {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.emplace_back(arg);
  }
  return files;
}

/// xorshift64* — deterministic, seedable, no <random> weight.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }
};

inline constexpr std::size_t kMaxInputBytes = std::size_t{1} << 16;

/// One mutation step over `input`, possibly splicing in `other`.
inline void mutate(Bytes& input, const Bytes& other, Rng& rng) {
  switch (rng.below(6)) {
    case 0:  // flip one bit
      if (!input.empty()) {
        input[rng.below(input.size())] ^=
            static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    case 1:  // overwrite one byte
      if (!input.empty()) {
        input[rng.below(input.size())] =
            static_cast<std::uint8_t>(rng.next());
      }
      break;
    case 2: {  // insert a random byte
      const std::size_t at = rng.below(input.size() + 1);
      input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                   static_cast<std::uint8_t>(rng.next()));
      break;
    }
    case 3: {  // delete a block
      if (!input.empty()) {
        const std::size_t at = rng.below(input.size());
        const std::size_t len = 1 + rng.below(input.size() - at);
        input.erase(input.begin() + static_cast<std::ptrdiff_t>(at),
                    input.begin() + static_cast<std::ptrdiff_t>(at + len));
      }
      break;
    }
    case 4: {  // duplicate a block
      if (!input.empty()) {
        const std::size_t at = rng.below(input.size());
        const std::size_t len =
            1 + rng.below(std::min<std::size_t>(input.size() - at, 32));
        Bytes block(input.begin() + static_cast<std::ptrdiff_t>(at),
                    input.begin() + static_cast<std::ptrdiff_t>(at + len));
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                     block.begin(), block.end());
      }
      break;
    }
    default: {  // splice: tail of `other` onto a prefix of `input`
      if (!other.empty()) {
        const std::size_t keep = rng.below(input.size() + 1);
        input.resize(keep);
        const std::size_t from = rng.below(other.size());
        input.insert(input.end(),
                     other.begin() + static_cast<std::ptrdiff_t>(from),
                     other.end());
      }
      break;
    }
  }
  if (input.size() > kMaxInputBytes) {
    input.resize(kMaxInputBytes);
  }
}

inline int standalone_main(int argc, char** argv) {
  long fuzz_seconds = 0;
  std::vector<std::string> corpus_args;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--fuzz" && a + 1 < argc) {
      fuzz_seconds = std::strtol(argv[++a], nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s [--fuzz <seconds>] <corpus-dir-or-file>...\n",
                   argv[0]);
      return 0;
    } else {
      corpus_args.push_back(arg);
    }
  }

  // Replay pass: every corpus input exactly once.
  std::vector<Bytes> seeds;
  std::uint64_t replayed = 0;
  for (const std::string& arg : corpus_args) {
    for (const auto& path : collect(arg)) {
      Bytes input = read_file(path);
      LLVMFuzzerTestOneInput(input.data(), input.size());
      ++replayed;
      seeds.push_back(std::move(input));
    }
  }
  std::printf("%s: replayed %llu corpus inputs\n", argv[0],
              static_cast<unsigned long long>(replayed));

  if (fuzz_seconds <= 0) {
    return 0;
  }

  // Mutation pass: wall-clock bounded, current input persisted before
  // every execution so a crash leaves its reproducer on disk.
  if (seeds.empty()) {
    seeds.emplace_back();  // fuzz from the empty input
  }
  const std::string last_input_path =
      std::string(argv[0]) + ".last_input";
  Rng rng{0x9E3779B97F4A7C15ULL ^
          static_cast<std::uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count())};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(fuzz_seconds);
  std::uint64_t execs = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    Bytes input = seeds[rng.below(seeds.size())];
    const Bytes& other = seeds[rng.below(seeds.size())];
    const std::size_t steps = 1 + rng.below(4);
    for (std::size_t s = 0; s < steps; ++s) {
      mutate(input, other, rng);
    }
    {
      std::ofstream out(last_input_path,
                        std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(input.data()),
                static_cast<std::streamsize>(input.size()));
    }
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++execs;
  }
  std::remove(last_input_path.c_str());
  std::printf("%s: %llu mutated executions in %ld s, no crashes\n", argv[0],
              static_cast<unsigned long long>(execs), fuzz_seconds);
  return 0;
}

}  // namespace ambit::fuzz

int main(int argc, char** argv) {
  return ambit::fuzz::standalone_main(argc, argv);
}

#endif  // AMBIT_FUZZ_STANDALONE
