// Fuzz target: the metrics side listener's HTTP surface
// (serve/metrics_http.h).
//
// The --metrics port accepts raw bytes from anything that can open a
// TCP connection, so both pure functions behind it are held to the
// serve-parser contract: any byte string either routes to a complete
// HTTP/1.0 response or (for parse_http_request_line) throws
// ambit::Error — no other exception, no crash, no sanitizer finding.
// http_response must ALWAYS produce a response: it catches the parse
// rejection itself and answers 400, so the harness asserts the
// response invariants every response shares.
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/metrics_http.h"
#include "util/error.h"

namespace {

/// Every response the router can produce is a complete HTTP/1.0 head:
/// status line, a blank line, and a Content-Length that matches the
/// body it frames.
void check_response_invariants(const std::string& response) {
  if (response.rfind("HTTP/1.0 ", 0) != 0) {
    __builtin_trap();
  }
  const std::size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    __builtin_trap();
  }
  const std::size_t cl = response.find("Content-Length: ");
  if (cl == std::string::npos || cl > head_end) {
    __builtin_trap();
  }
  const std::size_t body_size = response.size() - (head_end + 4);
  if (std::stoull(response.substr(cl + 16)) != body_size) {
    __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string request(reinterpret_cast<const char*>(data), size);

  // The router: must answer every byte string with a framed response,
  // and must invoke render() only for the exact /metrics route.
  bool rendered = false;
  const std::string response = ambit::serve::http_response(
      request, [&rendered] {
        rendered = true;
        return std::string("# HELP f f\n# TYPE f counter\nf 1\n");
      });
  check_response_invariants(response);
  if (rendered && response.find(" 200 OK\r\n") == std::string::npos) {
    __builtin_trap();
  }

  // The request-line parser on the raw first line, like the listener
  // feeds it: accepted lines re-serialize to the original tokens.
  std::size_t eol = request.find('\n');
  if (eol == std::string::npos) {
    eol = request.size();
  }
  std::string line = request.substr(0, eol);
  if (!line.empty() && line.back() == '\r') {
    line.pop_back();
  }
  try {
    const ambit::serve::HttpRequestLine parsed =
        ambit::serve::parse_http_request_line(line);
    if (parsed.method + " " + parsed.target + " " + parsed.version != line) {
      __builtin_trap();
    }
  } catch (const ambit::Error&) {
    // malformed request line: the expected outcome for most inputs
  }
  return 0;
}

#include "fuzz_driver.h"
