// Fuzz target: the flat two-level BLIF reader (logic/blif.h).
//
// read_blif parses external netlist files; arbitrary bytes must be
// rejected with ambit::Error and nothing worse. Inputs that do parse
// get the stronger printer/parser fixpoint check: writing the parsed
// model and re-parsing must reproduce the written bytes exactly
// (write ∘ read is idempotent on the writer's image), which pins both
// directions of the subset down to formatting.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "logic/blif.h"
#include "util/error.h"

namespace {

[[noreturn]] void die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_blif: %s: %s\n", what, detail.c_str());
  std::abort();
}

std::string print(const ambit::logic::BlifFile& file) {
  std::ostringstream out;
  ambit::logic::write_blif(out, file.cover, file.model, file.input_labels,
                           file.output_labels);
  return out.str();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  ambit::logic::BlifFile file;
  try {
    std::istringstream in(text);
    file = ambit::logic::read_blif(in, "fuzz");
  } catch (const ambit::Error&) {
    return 0;  // clean rejection
  }

  const std::string once = print(file);
  ambit::logic::BlifFile reparsed;
  try {
    std::istringstream in(once);
    reparsed = ambit::logic::read_blif(in, "fuzz-reprint");
  } catch (const ambit::Error& e) {
    die("write_blif emitted unreadable output", e.what());
  }
  const std::string twice = print(reparsed);
  if (twice != once) {
    die("printer/parser fixpoint violated", once + "-- vs --\n" + twice);
  }
  return 0;
}

#include "fuzz_driver.h"
