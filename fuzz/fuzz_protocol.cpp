// Fuzz target: the serve line-protocol parser (serve/protocol.h).
//
// parse_request and hex_decode see raw attacker bytes on every
// connection, so the contract under fuzzing is strict: any byte string
// either parses or throws ambit::Error — no other exception, no crash,
// no sanitizer finding. Parsed EVAL/SIM requests feed their hex tokens
// through hex_decode at several widths, the exact follow-up the server
// performs.
#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  try {
    const ambit::serve::Request request = ambit::serve::parse_request(line);
    for (const std::string& token : request.patterns) {
      for (const int width : {1, 7, 64, 200}) {
        try {
          const std::vector<bool> bits =
              ambit::serve::hex_decode(token, width);
          // encode(decode(x)) must itself re-decode cleanly.
          (void)ambit::serve::hex_decode(ambit::serve::hex_encode(bits),
                                         width);
        } catch (const ambit::Error&) {
          // rejected token: fine, as long as it is a clean rejection
        }
      }
    }
  } catch (const ambit::Error&) {
    // malformed request line: the expected outcome for most inputs
  }
  return 0;
}

#include "fuzz_driver.h"
