// Fuzz target: the Espresso .pla reader (logic/pla_io.h).
//
// read_pla is the front door for every benchmark file and every LOAD
// request the server performs, so it must reject arbitrary bytes with
// ambit::Error and nothing worse. When an input does parse, the
// harness additionally checks the printer against the parser:
// write_pla's output must re-read cleanly into a file with the same
// shape — a reader/writer mismatch is a real bug even though no
// memory was harmed, so it aborts.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "logic/pla_io.h"
#include "util/error.h"

namespace {

[[noreturn]] void die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_pla_io: %s: %s\n", what, detail.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  ambit::logic::PlaFile pla;
  try {
    std::istringstream in(text);
    pla = ambit::logic::read_pla(in, "fuzz");
  } catch (const ambit::Error&) {
    return 0;  // clean rejection
  }

  // Round trip: the canonical printed form must be re-readable and
  // preserve the cover shape.
  std::ostringstream printed;
  ambit::logic::write_pla(printed, pla);
  ambit::logic::PlaFile again;
  try {
    std::istringstream in(printed.str());
    again = ambit::logic::read_pla(in, "fuzz-reprint");
  } catch (const ambit::Error& e) {
    die("write_pla emitted unreadable output", e.what());
  }
  if (again.num_inputs() != pla.num_inputs() ||
      again.num_outputs() != pla.num_outputs() ||
      again.onset.size() != pla.onset.size() ||
      again.dcset.size() != pla.dcset.size()) {
    die("round trip changed the cover shape", printed.str());
  }
  return 0;
}

#include "fuzz_driver.h"
