// Whirlpool-PLA synthesis walk-through: take a function whose outputs
// share a common SOP core, run Doppio-Espresso, inspect the two
// stages, and compare cell counts against the flat two-plane PLA.
#include <cstdio>

#include "core/wpla.h"
#include "logic/truth_table.h"

using namespace ambit;

int main() {
  // out0 = the shared core g (4 products over inputs 0..4);
  // out1 = g + private products over inputs 5..7;
  // out2 = g + other private products.
  const auto f = logic::Cover::parse(8, 3,
                                     {"11------ 111", "00--1--- 111",
                                      "--110--- 111", "-0-01--- 111",
                                      "-----11- 010", "-----00- 010",
                                      "------01 001", "-----1-1 001"});
  std::printf("function: %d inputs, %d outputs, %zu products\n\n",
              f.num_inputs(), f.num_outputs(), f.size());

  const auto synth = core::synthesize_wpla(f);
  std::printf("Doppio-Espresso chose %zu intermediate(s):",
              synth.intermediate_outputs.size());
  for (const int g : synth.intermediate_outputs) {
    std::printf(" out%d", g);
  }
  std::printf("\n\nstage A (planes 1-2), %zu products over the primary inputs:\n%s",
              synth.stage_a.size(), synth.stage_a.to_string().c_str());
  std::printf("\nstage B (planes 3-4), %zu products over inputs+G:\n%s",
              synth.stage_b.size(), synth.stage_b.to_string().c_str());

  std::printf("\ncells: flat PLA %lld -> WPLA %lld (%.1f%% saving)\n",
              synth.flat_cells, synth.wpla_cells,
              100.0 * (1.0 - static_cast<double>(synth.wpla_cells) /
                                 static_cast<double>(synth.flat_cells)));

  // Exhaustive verification of the four-plane cascade: one bit-parallel
  // sweep over all 2^8 input patterns via the Evaluator batch path.
  const core::Wpla wpla(synth.stage_a, synth.stage_b, f.num_inputs());
  const bool ok = equivalent(wpla, logic::TruthTable::from_cover(f));
  std::printf("four-plane cascade equivalent to the flat function: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
