// Quickstart: the core AMBIT flow in ~60 lines.
//
//   1. describe a multi-output Boolean function as a cover (or load a
//      .pla file with logic::read_pla_file);
//   2. minimize it with the built-in Espresso;
//   3. map it onto an ambipolar-CNFET GNOR PLA;
//   4. evaluate the programmed array and compare the area against the
//      classical Flash/EEPROM baselines.
//
// Build & run:  cmake -B build -S . && cmake --build build -j &&
//               ./build/quickstart
#include <cstdio>

#include "core/classical_pla.h"
#include "core/gnor_pla.h"
#include "espresso/espresso.h"
#include "logic/cover.h"
#include "tech/area_model.h"

using namespace ambit;

int main() {
  // A 4-input, 2-output function in Espresso cube notation
  // (inputs over {0,1,-}, one output-membership bit per output).
  const auto f = logic::Cover::parse(4, 2, {
                                               "11-- 10",  // ab        -> out0
                                               "1-1- 10",  // ac        -> out0
                                               "-11- 10",  // bc        -> out0 (redundant!)
                                               "--11 01",  // cd        -> out1
                                               "0--1 01",  // a'd       -> out1
                                           });
  std::printf("input cover: %zu products\n", f.size());

  // Two-level minimization. The consensus term bc is redundant and
  // disappears.
  const auto minimized = espresso::minimize(f);
  std::printf("after Espresso: %zu products\n%s\n", minimized.cover.size(),
              minimized.cover.to_string().c_str());

  // Map onto the GNOR PLA: ONE column per input, polarity generated
  // inside each ambipolar cell.
  const auto pla = core::GnorPla::map_cover(minimized.cover);
  std::printf("GNOR PLA: %d inputs x %d products x %d outputs, %lld cells\n",
              pla.num_inputs(), pla.num_products(), pla.num_outputs(),
              pla.cell_count());
  std::printf("%s\n", pla.to_ascii().c_str());

  // Evaluate: x = (a=1, b=0, c=1, d=0): out0 = ac = 1, out1 = 0.
  const auto out = pla.evaluate({true, false, true, false});
  std::printf("f(1,0,1,0) = (%d, %d)   [expect (1, 0)]\n\n", int(out[0]),
              int(out[1]));

  // Batch evaluation: every circuit type is an ambit::Evaluator, so all
  // 2^4 input patterns can be swept in ONE bit-parallel pass (64
  // patterns per machine word — see logic/pattern_batch.h).
  const auto batch = pla.evaluate_batch(logic::PatternBatch::exhaustive(4));
  int ones = 0;
  for (std::uint64_t m = 0; m < batch.num_patterns(); ++m) {
    ones += batch.get(m, 0);
  }
  std::printf("batch sweep: out0 is ON for %d of %llu patterns\n\n", ones,
              static_cast<unsigned long long>(batch.num_patterns()));

  // Area in the paper's three technologies.
  const auto dim = tech::dimensions_of(minimized.cover);
  for (const auto& t : {tech::flash_technology(), tech::eeprom_technology(),
                        tech::cnfet_technology()}) {
    std::printf("%-7s PLA area: %7.0f L^2  (%lld cells x %.0f L^2)\n",
                t.name.c_str(), tech::pla_area_l2(t, dim),
                tech::cell_count(t, dim), t.cell_area_l2);
  }
  return 0;
}
