// Defect tolerance walk-through: map a function, shoot defects into
// the array, watch the naive programming break, repair with the
// defect-aware matcher + spare rows, and verify the repaired array
// still computes the function — at the transistor level.
#include <cstdio>

#include "espresso/espresso.h"
#include "fault/yield.h"
#include "logic/truth_table.h"
#include "simulate/pla_sim.h"
#include "util/rng.h"

using namespace ambit;

int main() {
  // A 5-input, 2-output controller-ish function.
  const auto f = logic::Cover::parse(
      5, 2, {"11--- 10", "0-1-- 10", "--011 01", "1---0 01", "-10-1 11"});
  const auto minimized = espresso::minimize(f).cover;
  const auto pla = core::GnorPla::map_cover(minimized);
  std::printf("mapped PLA: %d products x %d inputs\n\n", pla.num_products(),
              pla.num_inputs());

  // Manufacture a defective die (fixed seed for reproducibility).
  const int spares = 2;
  Rng rng(2008);
  fault::DefectMap defects(pla.num_products() + spares, pla.num_inputs());
  defects.add({.row = 0, .col = 0, .type = fault::DefectType::kStuckOff});
  defects.add({.row = 2, .col = 3, .type = fault::DefectType::kStuckN});
  defects.add({.row = 3, .col = 1, .type = fault::DefectType::kStuckP});
  std::printf("injected %zu defects (stuck-off@0,0; stuck-n@2,3; stuck-p@3,1)\n",
              defects.count());

  std::printf("naive in-place programming works: %s\n",
              fault::naive_programmable(pla, defects) ? "yes" : "no");

  const auto repair = fault::repair_product_plane(pla, defects, spares);
  if (!repair.success) {
    std::printf("repair failed (die unusable)\n");
    return 1;
  }
  std::printf("defect-aware repair: success, %d product(s) relocated\n",
              repair.relocated);
  for (int p = 0; p < pla.num_products(); ++p) {
    std::printf("  product %d -> physical row %d\n", p,
                repair.row_of_product[static_cast<std::size_t>(p)]);
  }

  // Verify the repaired physical array exhaustively, transistor-level.
  const auto physical = fault::apply_repair(pla, repair, spares);
  simulate::GnorPlaSimulator sim(physical, tech::default_cnfet_electrical());
  const auto expected = logic::TruthTable::from_cover(minimized);
  bool all_ok = true;
  for (std::uint64_t m = 0; m < expected.num_minterms(); ++m) {
    std::vector<bool> in(5);
    for (int i = 0; i < 5; ++i) {
      in[static_cast<std::size_t>(i)] = ((m >> i) & 1) != 0;
    }
    const auto out = sim.run_cycle(in);
    for (int j = 0; j < 2; ++j) {
      all_ok = all_ok &&
               (out.outputs[static_cast<std::size_t>(j)] ==
                (expected.get(m, j) ? simulate::Logic::k1 : simulate::Logic::k0));
    }
  }
  std::printf("\nrepaired array verified on all 32 input vectors "
              "(switch-level): %s\n",
              all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
