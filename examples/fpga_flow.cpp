// End-to-end FPGA implementation flow on both architectures — a
// miniature of the Table 2 experiment with verbose per-stage output:
// generate circuit -> pack -> place -> route -> timing, standard
// (dual-rail) vs ambipolar-CNFET (GNOR) CLBs.
#include <cstdio>

#include "fpga/flow.h"

using namespace ambit;
using namespace ambit::fpga;

namespace {

void report(const char* tag, const FlowReport& r) {
  std::printf("--- %s ---\n", tag);
  std::printf("grid %dx%d, channel width %d, CLB delay %.3f ns\n",
              r.arch.grid_width, r.arch.grid_height, r.arch.channel_width,
              r.arch.clb_delay_s * 1e9);
  std::printf("pack:   %d CLBs (%d pads), %d signals to route, occupancy %.1f%%\n",
              r.logic_clusters, r.io_pads, r.nets_routed, r.occupancy * 100);
  std::printf("place:  HPWL %.0f -> %.0f tile-units (%d/%d moves accepted)\n",
              r.placement.initial_hpwl, r.placement.hpwl,
              r.placement.moves_accepted, r.placement.moves_tried);
  std::printf("route:  %s in %d iteration(s), wirelength %lld, peak channel "
              "utilization %.0f%%\n",
              r.routing.success ? "success" : "FAILED", r.routing.iterations,
              r.routing.total_wirelength,
              r.routing.max_channel_utilization * 100);
  std::printf("timing: critical path %.2f ns (%d logic levels, %.0f%% in "
              "routing) -> Fmax %.0f MHz\n\n",
              r.timing.critical_path_s * 1e9, r.timing.logic_levels,
              r.timing.routing_fraction * 100, r.timing.fmax_hz / 1e6);
}

}  // namespace

int main() {
  const auto e = tech::default_cnfet_electrical();

  CircuitSpec spec;
  spec.num_primary_inputs = 16;
  spec.num_primary_outputs = 8;
  spec.num_logic_blocks = 220;
  spec.num_levels = 7;
  const Netlist netlist = generate_circuit(spec, 7);
  std::printf("circuit: %d logic blocks, %d nets (%d need both polarities)\n\n",
              netlist.count_kind(BlockKind::kLogic), netlist.num_nets(),
              netlist.count_complemented_nets());

  FpgaArch std_arch = make_standard_arch(9, 9, e);
  std_arch.channel_width = 22;
  report("standard FPGA (dual-rail PLA CLBs)",
         run_flow(netlist, std_arch, {.mode = PackMode::kDualRail}));

  const FpgaArch cn_arch = make_cnfet_arch(std_arch, e);
  report("ambipolar-CNFET FPGA (GNOR CLBs, half-area tiles)",
         run_flow(netlist, cn_arch, {.mode = PackMode::kGnor}));
  return 0;
}
