// Reconfigurable logic with one GNOR gate (the paper's Fig. 2 demo,
// interactive-style): program the SAME four-CNFET array to several
// different functions purely by re-charging the polarity gates, and
// check each configuration at the transistor level.
#include <cstdio>
#include <vector>

#include "core/gnor_pla.h"
#include "core/programmer.h"
#include "simulate/pla_sim.h"

using namespace ambit;
using core::CellConfig;

namespace {

void demo(const char* title, const std::vector<CellConfig>& cells) {
  const auto e = tech::default_cnfet_electrical();

  // One GNOR row; reprogram through the §4 charge protocol.
  core::GnorPlane plane(1, static_cast<int>(cells.size()));
  for (int c = 0; c < static_cast<int>(cells.size()); ++c) {
    plane.set_cell(0, c, cells[static_cast<std::size_t>(c)]);
  }
  core::PlaneProgrammer programmer(1, plane.cols(), e);
  programmer.apply_all(core::PlaneProgrammer::compile(plane, e));
  const core::GnorPlane programmed = programmer.decode();

  std::printf("--- %s ---\n", title);
  std::printf("function: %s   (array: %s)\n",
              programmed.row_gate(0).function_string().c_str(),
              programmed.to_ascii().substr(0, cells.size()).c_str());

  // Switch-level truth table via a 1x1 PLA wrapper.
  core::GnorPla pla(plane.cols(), 1, 1);
  for (int c = 0; c < plane.cols(); ++c) {
    pla.product_plane().set_cell(0, c, programmed.cell(0, c));
  }
  pla.output_plane().set_cell(0, 0, CellConfig::kPass);
  pla.set_buffer_inverted(0, false);
  simulate::GnorPlaSimulator sim(pla, e);

  for (int m = 0; m < (1 << plane.cols()); ++m) {
    std::vector<bool> in;
    for (int i = 0; i < plane.cols(); ++i) {
      in.push_back((m >> i) & 1);
    }
    const auto result = sim.run_cycle(in);
    std::printf("  in=");
    for (const bool b : in) {
      std::printf("%d", int(b));
    }
    std::printf("  Y=%s  (eval %.0f ps)\n",
                simulate::to_string(result.outputs[0]),
                result.plane1_eval_delay_s * 1e12);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("One physical 3-input GNOR array, four different functions —\n"
              "only the stored PG charges change between runs:\n\n");
  demo("3-input NOR", {CellConfig::kPass, CellConfig::kPass, CellConfig::kPass});
  demo("3-input AND (NOR of inverted inputs)",
       {CellConfig::kInvert, CellConfig::kInvert, CellConfig::kInvert});
  demo("B' AND C (A inhibited)",
       {CellConfig::kOff, CellConfig::kPass, CellConfig::kInvert});
  demo("inverter on A alone",
       {CellConfig::kPass, CellConfig::kOff, CellConfig::kOff});
  std::printf("This is the reconfigurability the paper builds on: the cell\n"
              "FUNCTION lives in charge, not in wiring.\n");
  return 0;
}
